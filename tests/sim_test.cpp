// Tests for the hardware-simulator substrate: cost model, streams, PCIe,
// device memory, warm-up.

#include <gtest/gtest.h>

#include "sim/device.hpp"
#include "support/check.hpp"
#include "sim/device_spec.hpp"
#include "sim/kernel.hpp"
#include "sim/pcie.hpp"
#include "sim/stream.hpp"
#include "sim/warmup.hpp"

namespace dgnn::sim {
namespace {

TEST(DeviceSpecTest, PresetsAreSane)
{
    const DeviceSpec cpu = DeviceSpec::XeonGold6226R();
    const DeviceSpec gpu = DeviceSpec::RtxA6000();
    EXPECT_EQ(cpu.kind, DeviceKind::kCpu);
    EXPECT_EQ(gpu.kind, DeviceKind::kGpu);
    EXPECT_GT(gpu.peak_gflops, cpu.peak_gflops);
    EXPECT_GT(gpu.mem_bw_gbps, cpu.mem_bw_gbps);
    EXPECT_GT(gpu.launch_overhead_us, cpu.launch_overhead_us);
    EXPECT_GT(gpu.context_init_us, 0.0);
    EXPECT_EQ(cpu.context_init_us, 0.0);
    EXPECT_STREQ(ToString(DeviceKind::kGpu), "GPU");
}

TEST(KernelCostTest, OccupancyClampedToFloorAndOne)
{
    const DeviceSpec gpu = DeviceSpec::RtxA6000();
    KernelDesc tiny{"tiny", 100, 100, 1, false};
    EXPECT_DOUBLE_EQ(Occupancy(gpu, tiny), gpu.occupancy_floor);
    KernelDesc huge{"huge", 100, 100, 100000000, false};
    EXPECT_DOUBLE_EQ(Occupancy(gpu, huge), 1.0);
    KernelDesc mid{"mid", 100, 100, gpu.saturation_items / 2, false};
    EXPECT_NEAR(Occupancy(gpu, mid), 0.5, 1e-9);
}

TEST(KernelCostTest, DurationIncludesLaunchOverhead)
{
    const DeviceSpec gpu = DeviceSpec::RtxA6000();
    KernelDesc empty{"empty", 0, 0, 1, false};
    EXPECT_DOUBLE_EQ(KernelDuration(gpu, empty), gpu.launch_overhead_us);
}

TEST(KernelCostTest, ComputeTimeScalesInverselyWithOccupancy)
{
    const DeviceSpec gpu = DeviceSpec::RtxA6000();
    KernelDesc low{"k", 1000000000, 0, gpu.saturation_items / 10, false};
    KernelDesc high{"k", 1000000000, 0, gpu.saturation_items, false};
    EXPECT_NEAR(ComputeTime(gpu, low) / ComputeTime(gpu, high), 10.0, 1e-6);
}

TEST(KernelCostTest, IrregularAccessIsSlower)
{
    const DeviceSpec gpu = DeviceSpec::RtxA6000();
    KernelDesc regular{"k", 0, 10000000, 1000000, false};
    KernelDesc irregular{"k", 0, 10000000, 1000000, true};
    EXPECT_GT(ComputeTime(gpu, irregular), ComputeTime(gpu, regular));
    EXPECT_NEAR(ComputeTime(gpu, irregular) / ComputeTime(gpu, regular),
                gpu.irregular_penalty, 1e-6);
}

TEST(KernelCostTest, MemoryBoundVsComputeBound)
{
    const DeviceSpec gpu = DeviceSpec::RtxA6000();
    // Enormous bytes, no flops: memory-bound.
    KernelDesc mem{"m", 1, 1000000000, 1000000, false};
    // Enormous flops, no bytes: compute-bound.
    KernelDesc comp{"c", 1000000000000, 1, 1000000, false};
    EXPECT_GT(ComputeTime(gpu, mem), 0.0);
    EXPECT_GT(ComputeTime(gpu, comp), 0.0);
    // Duration is the max of the two terms: adding tiny flops to the
    // memory-bound kernel should not change its time.
    KernelDesc mem2 = mem;
    mem2.flops = 1000;
    EXPECT_DOUBLE_EQ(ComputeTime(gpu, mem), ComputeTime(gpu, mem2));
}

TEST(KernelCostTest, NegativeWorkThrows)
{
    const DeviceSpec gpu = DeviceSpec::RtxA6000();
    KernelDesc bad{"b", -1, 0, 1, false};
    EXPECT_THROW(ComputeTime(gpu, bad), Error);
    KernelDesc bad2{"b", 0, 0, 0, false};
    EXPECT_THROW(Occupancy(gpu, bad2), Error);
}

TEST(StreamTest, EnqueueSerializes)
{
    Stream s("test");
    const auto a = s.Enqueue(0.0, 10.0);
    EXPECT_DOUBLE_EQ(a.start, 0.0);
    EXPECT_DOUBLE_EQ(a.end, 10.0);
    // Earliest start 5 < ready 10: must wait.
    const auto b = s.Enqueue(5.0, 3.0);
    EXPECT_DOUBLE_EQ(b.start, 10.0);
    EXPECT_DOUBLE_EQ(b.end, 13.0);
    // Earliest start after ready: idle gap allowed.
    const auto c = s.Enqueue(20.0, 1.0);
    EXPECT_DOUBLE_EQ(c.start, 20.0);
    EXPECT_DOUBLE_EQ(s.ReadyTime(), 21.0);
    s.Reset();
    EXPECT_DOUBLE_EQ(s.ReadyTime(), 0.0);
}

TEST(PcieTest, TransferTimeLatencyPlusBandwidth)
{
    PcieLink link(10.0, 5.0);  // 10 GB/s, 5 us latency
    EXPECT_DOUBLE_EQ(link.TransferTime(0), 5.0);
    // 10 GB/s == 10000 bytes/us: 1 MB -> ~104.9 us + 5.
    EXPECT_NEAR(link.TransferTime(1 << 20), 5.0 + 104.8576, 1e-3);
    EXPECT_THROW(link.TransferTime(-1), Error);
}

TEST(PcieTest, LinkQueuesTransfers)
{
    PcieLink link(10.0, 5.0);
    const auto a = link.Schedule(0.0, 100000);
    const auto b = link.Schedule(0.0, 100000);
    EXPECT_DOUBLE_EQ(b.start, a.end);
}

TEST(MemoryPoolTest, AllocFreePeak)
{
    MemoryPool pool(1000);
    const int64_t a = pool.Allocate(400, "a");
    EXPECT_EQ(pool.LiveBytes(), 400);
    const int64_t b = pool.Allocate(500, "b");
    EXPECT_EQ(pool.LiveBytes(), 900);
    EXPECT_EQ(pool.PeakBytes(), 900);
    pool.Free(a);
    EXPECT_EQ(pool.LiveBytes(), 500);
    EXPECT_EQ(pool.PeakBytes(), 900);  // peak persists
    pool.ResetPeak();
    EXPECT_EQ(pool.PeakBytes(), 500);
    EXPECT_EQ(pool.TotalAllocatedBytes(), 900);
    pool.Free(b);
    EXPECT_EQ(pool.LiveBytes(), 0);
}

TEST(MemoryPoolTest, OutOfMemoryThrows)
{
    MemoryPool pool(100);
    pool.Allocate(80, "x");
    EXPECT_THROW(pool.Allocate(30, "y"), Error);
}

TEST(MemoryPoolTest, DoubleFreeThrows)
{
    MemoryPool pool(100);
    const int64_t id = pool.Allocate(10, "x");
    pool.Free(id);
    EXPECT_THROW(pool.Free(id), Error);
}

TEST(DeviceTest, BusyAccounting)
{
    Device dev(DeviceSpec::RtxA6000());
    dev.AddBusy(10.0, 0.5);
    dev.AddBusy(10.0, 1.0);
    EXPECT_DOUBLE_EQ(dev.BusyTime(), 20.0);
    EXPECT_DOUBLE_EQ(dev.WeightedBusyTime(), 15.0);
    EXPECT_EQ(dev.KernelCount(), 2);
    EXPECT_DOUBLE_EQ(dev.UtilizationPct(100.0), 20.0);
    EXPECT_DOUBLE_EQ(dev.WeightedUtilizationPct(100.0), 15.0);
    dev.ResetBusy();
    EXPECT_DOUBLE_EQ(dev.BusyTime(), 0.0);
    EXPECT_EQ(dev.KernelCount(), 0);
}

TEST(DeviceTest, InvalidBusyThrows)
{
    Device dev(DeviceSpec::RtxA6000());
    EXPECT_THROW(dev.AddBusy(-1.0, 0.5), Error);
    EXPECT_THROW(dev.AddBusy(1.0, 1.5), Error);
}

TEST(WarmupTest, OneTimeComponentsForGpu)
{
    const DeviceSpec gpu = DeviceSpec::RtxA6000();
    PcieLink link = PcieLink::Gen4x16();
    const OneTimeWarmup w = ComputeOneTimeWarmup(gpu, link, 10 << 20);
    EXPECT_DOUBLE_EQ(w.context_init_us, gpu.context_init_us);
    EXPECT_GT(w.model_init_us, gpu.model_init_fixed_us);
    EXPECT_GT(w.weight_transfer_us, 0.0);
    EXPECT_DOUBLE_EQ(w.TotalUs(),
                     w.context_init_us + w.model_init_us + w.weight_transfer_us);
}

TEST(WarmupTest, CpuHasNoContextOrTransfer)
{
    const DeviceSpec cpu = DeviceSpec::XeonGold6226R();
    PcieLink link = PcieLink::Gen4x16();
    const OneTimeWarmup w = ComputeOneTimeWarmup(cpu, link, 10 << 20);
    EXPECT_DOUBLE_EQ(w.context_init_us, 0.0);
    EXPECT_DOUBLE_EQ(w.weight_transfer_us, 0.0);
    EXPECT_GT(w.model_init_us, 0.0);
}

TEST(WarmupTest, GpuModelInitMuchSlowerThanCpu)
{
    // Paper section 4.4: GPU model init is 40x - 937x the CPU's.
    const DeviceSpec gpu = DeviceSpec::RtxA6000();
    const DeviceSpec cpu = DeviceSpec::XeonGold6226R();
    PcieLink link = PcieLink::Gen4x16();
    const int64_t weights = 5 << 20;
    const double ratio = ComputeOneTimeWarmup(gpu, link, weights).model_init_us /
                         ComputeOneTimeWarmup(cpu, link, weights).model_init_us;
    EXPECT_GT(ratio, 40.0);
    EXPECT_LT(ratio, 2000.0);
}

TEST(WarmupTest, PerRunScalesWithWorkingSet)
{
    const DeviceSpec gpu = DeviceSpec::RtxA6000();
    const PerRunWarmup small = ComputePerRunWarmup(gpu, 1 << 20);
    const PerRunWarmup big = ComputePerRunWarmup(gpu, 100 << 20);
    EXPECT_GT(big.alloc_us, small.alloc_us);
    EXPECT_THROW(ComputePerRunWarmup(gpu, -1), Error);
}

/// Property sweep: kernel duration is monotone in flops, bytes, and
/// inversely monotone in parallelism.
class CostMonotonicity : public ::testing::TestWithParam<int64_t> {};

TEST_P(CostMonotonicity, MoreWorkNeverFaster)
{
    const DeviceSpec gpu = DeviceSpec::RtxA6000();
    const int64_t base = GetParam();
    KernelDesc k1{"k", base, base, 1000, false};
    KernelDesc k2{"k", base * 2, base, 1000, false};
    KernelDesc k3{"k", base, base * 2, 1000, false};
    KernelDesc k4{"k", base, base, 2000, false};
    EXPECT_GE(KernelDuration(gpu, k2), KernelDuration(gpu, k1));
    EXPECT_GE(KernelDuration(gpu, k3), KernelDuration(gpu, k1));
    EXPECT_LE(KernelDuration(gpu, k4), KernelDuration(gpu, k1));
}

INSTANTIATE_TEST_SUITE_P(Scales, CostMonotonicity,
                         ::testing::Values(1000, 100000, 10000000, 1000000000));

}  // namespace
}  // namespace dgnn::sim
