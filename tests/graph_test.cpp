// Tests for the dynamic-graph substrate: snapshots, event streams,
// temporal adjacency, snapshot sequences.

#include <gtest/gtest.h>

#include "graph/event_stream.hpp"
#include "graph/snapshot.hpp"
#include "graph/snapshot_sequence.hpp"
#include "support/check.hpp"

namespace dgnn::graph {
namespace {

TEST(SnapshotTest, CsrStructure)
{
    const std::vector<Edge> edges = {{0, 1, 1.0f}, {0, 2, 2.0f}, {2, 0, 3.0f}};
    GraphSnapshot g(3, edges);
    EXPECT_EQ(g.NumNodes(), 3);
    EXPECT_EQ(g.NumEdges(), 3);
    EXPECT_EQ(g.Degree(0), 2);
    EXPECT_EQ(g.Degree(1), 0);
    EXPECT_EQ(g.Degree(2), 1);
}

TEST(SnapshotTest, NeighborsSortedWithWeights)
{
    const std::vector<Edge> edges = {{0, 2, 2.0f}, {0, 1, 1.0f}};
    GraphSnapshot g(3, edges);
    const auto nbrs = g.Neighbors(0);
    ASSERT_EQ(nbrs.size(), 2u);
    EXPECT_EQ(nbrs[0], 1);
    EXPECT_EQ(nbrs[1], 2);
    const auto w = g.Weights(0);
    EXPECT_FLOAT_EQ(w[0], 1.0f);
    EXPECT_FLOAT_EQ(w[1], 2.0f);
}

TEST(SnapshotTest, OutOfRangeEdgeThrows)
{
    EXPECT_THROW(GraphSnapshot(2, {{0, 5, 1.0f}}), Error);
    EXPECT_THROW(GraphSnapshot(2, {{-1, 0, 1.0f}}), Error);
}

TEST(SnapshotTest, EmptyGraph)
{
    GraphSnapshot g(4, {});
    EXPECT_EQ(g.NumEdges(), 0);
    EXPECT_EQ(g.Degree(3), 0);
    EXPECT_TRUE(g.Neighbors(0).empty());
}

TEST(SnapshotTest, TopologyBytesPositive)
{
    GraphSnapshot g(3, {{0, 1, 1.0f}});
    EXPECT_GT(g.TopologyBytes(), 0);
}

TEST(SnapshotTest, CommonEdges)
{
    GraphSnapshot a(3, {{0, 1, 1.0f}, {1, 2, 1.0f}, {2, 0, 1.0f}});
    GraphSnapshot b(3, {{0, 1, 1.0f}, {1, 0, 1.0f}, {2, 0, 1.0f}});
    EXPECT_EQ(a.CommonEdges(b), 2);  // 0->1 and 2->0
    EXPECT_EQ(a.CommonEdges(a), 3);
}

TEST(EventStreamTest, SortsByTime)
{
    std::vector<TemporalEvent> events = {
        {0, 1, 5.0, 0}, {1, 2, 1.0, 1}, {2, 0, 3.0, 2}};
    EventStream s(3, std::move(events));
    EXPECT_EQ(s.NumEvents(), 3);
    EXPECT_DOUBLE_EQ(s.Event(0).time, 1.0);
    EXPECT_DOUBLE_EQ(s.Event(1).time, 3.0);
    EXPECT_DOUBLE_EQ(s.Event(2).time, 5.0);
    EXPECT_DOUBLE_EQ(s.StartTime(), 1.0);
    EXPECT_DOUBLE_EQ(s.EndTime(), 5.0);
}

TEST(EventStreamTest, StableSortKeepsSimultaneousOrder)
{
    std::vector<TemporalEvent> events = {{0, 1, 2.0, 10}, {1, 2, 2.0, 11}};
    EventStream s(3, std::move(events));
    EXPECT_EQ(s.Event(0).feature_index, 10);
    EXPECT_EQ(s.Event(1).feature_index, 11);
}

TEST(EventStreamTest, SliceAndBatches)
{
    std::vector<TemporalEvent> events;
    for (int i = 0; i < 10; ++i) {
        events.push_back({0, 1, static_cast<double>(i), i});
    }
    EventStream s(2, std::move(events));
    const auto slice = s.Slice(3, 7);
    EXPECT_EQ(slice.size(), 4u);
    EXPECT_DOUBLE_EQ(slice[0].time, 3.0);
    EXPECT_EQ(s.NumBatches(3), 4);
    EXPECT_EQ(s.NumBatches(10), 1);
    EXPECT_EQ(s.NumBatches(11), 1);
    EXPECT_THROW(s.Slice(5, 3), Error);
    EXPECT_THROW(s.NumBatches(0), Error);
}

TEST(EventStreamTest, OutOfRangeNodeThrows)
{
    std::vector<TemporalEvent> events = {{0, 9, 1.0, 0}};
    EXPECT_THROW(EventStream(3, std::move(events)), Error);
}

TEST(EventStreamTest, EmptyStream)
{
    EventStream s(5, {});
    EXPECT_EQ(s.NumEvents(), 0);
    EXPECT_DOUBLE_EQ(s.StartTime(), 0.0);
    EXPECT_DOUBLE_EQ(s.EndTime(), 0.0);
}

TEST(TemporalAdjacencyTest, HistoryBothDirections)
{
    std::vector<TemporalEvent> events = {{0, 1, 1.0, 0}, {0, 2, 2.0, 1}};
    EventStream s(3, std::move(events));
    TemporalAdjacency adj(s);
    EXPECT_EQ(adj.History(0).size(), 2u);
    EXPECT_EQ(adj.History(1).size(), 1u);
    EXPECT_EQ(adj.History(1)[0].neighbor, 0);
    EXPECT_EQ(adj.History(2)[0].neighbor, 0);
}

TEST(TemporalAdjacencyTest, HistoryIsTimeSorted)
{
    std::vector<TemporalEvent> events = {
        {0, 1, 3.0, 0}, {0, 2, 1.0, 1}, {0, 1, 2.0, 2}};
    EventStream s(3, std::move(events));
    TemporalAdjacency adj(s);
    const auto h = adj.History(0);
    ASSERT_EQ(h.size(), 3u);
    EXPECT_LE(h[0].time, h[1].time);
    EXPECT_LE(h[1].time, h[2].time);
}

TEST(TemporalAdjacencyTest, CountBeforeBisection)
{
    std::vector<TemporalEvent> events = {
        {0, 1, 1.0, 0}, {0, 1, 2.0, 1}, {0, 1, 3.0, 2}};
    EventStream s(2, std::move(events));
    TemporalAdjacency adj(s);
    EXPECT_EQ(adj.CountBefore(0, 0.5), 0);
    EXPECT_EQ(adj.CountBefore(0, 2.0), 1);   // strictly before
    EXPECT_EQ(adj.CountBefore(0, 2.5), 2);
    EXPECT_EQ(adj.CountBefore(0, 100.0), 3);
}

TEST(SnapshotSequenceTest, StepsAndTotalEdges)
{
    std::vector<GraphSnapshot> snaps;
    snaps.emplace_back(3, std::vector<Edge>{{0, 1, 1.0f}});
    snaps.emplace_back(3, std::vector<Edge>{{0, 1, 1.0f}, {1, 2, 1.0f}});
    SnapshotSequence seq(3, std::move(snaps));
    EXPECT_EQ(seq.NumSteps(), 2);
    EXPECT_EQ(seq.TotalEdges(), 3);
    EXPECT_EQ(seq.Step(1).NumEdges(), 2);
    EXPECT_THROW(seq.Step(2), Error);
}

TEST(SnapshotSequenceTest, NodeCountMismatchThrows)
{
    std::vector<GraphSnapshot> snaps;
    snaps.emplace_back(2, std::vector<Edge>{});
    EXPECT_THROW(SnapshotSequence(3, std::move(snaps)), Error);
}

TEST(SnapshotSequenceTest, OverlapMetrics)
{
    std::vector<GraphSnapshot> snaps;
    snaps.emplace_back(3, std::vector<Edge>{{0, 1, 1.0f}, {1, 2, 1.0f}});
    snaps.emplace_back(3, std::vector<Edge>{{0, 1, 1.0f}, {2, 0, 1.0f}});
    SnapshotSequence seq(3, std::move(snaps));
    // Common: {0->1}. Union: 3 edges. Jaccard = 1/3.
    EXPECT_NEAR(seq.AdjacentOverlap(0), 1.0 / 3.0, 1e-9);
    EXPECT_NEAR(seq.MeanOverlap(), 1.0 / 3.0, 1e-9);
}

TEST(SnapshotSequenceTest, IdenticalSnapshotsFullOverlap)
{
    std::vector<Edge> edges = {{0, 1, 1.0f}, {1, 2, 1.0f}};
    std::vector<GraphSnapshot> snaps;
    snaps.emplace_back(3, edges);
    snaps.emplace_back(3, edges);
    SnapshotSequence seq(3, std::move(snaps));
    EXPECT_DOUBLE_EQ(seq.AdjacentOverlap(0), 1.0);
}

}  // namespace
}  // namespace dgnn::graph
