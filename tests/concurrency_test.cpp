// Thread-safety tests for the core statistics accumulators. The library's
// aggregation idiom is shard-locally-then-merge: worker threads each own a
// private RunningStat / LatencyHistogram, and a single merge step folds the
// shards together. These tests drive that idiom with real std::threads so
// the CI ThreadSanitizer job can prove the pattern is race-free, and they
// check the merged results against a serial reference so the merge algebra
// (Chan et al. for the Welford M2 term, bucket-wise addition for the
// histogram) stays exact under arbitrary sharding.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <mutex>
#include <random>
#include <thread>
#include <vector>

#include "core/latency_histogram.hpp"

namespace dgnn::core {
namespace {

std::vector<double>
SampleStream(uint64_t seed, int64_t n)
{
    std::mt19937_64 rng(seed);
    std::lognormal_distribution<double> latency(std::log(500.0), 0.8);
    std::vector<double> samples;
    samples.reserve(n);
    for (int64_t i = 0; i < n; ++i) {
        samples.push_back(latency(rng));
    }
    return samples;
}

TEST(ConcurrencyTest, ShardedRunningStatMergeMatchesSerial)
{
    constexpr int kThreads = 8;
    constexpr int64_t kPerThread = 20000;
    const std::vector<double> samples =
        SampleStream(17, kThreads * kPerThread);

    RunningStat serial;
    for (const double v : samples) {
        serial.Record(v);
    }

    // Each worker records its contiguous shard into a private accumulator;
    // the merge folds the shards under a lock. TSan checks the whole dance.
    RunningStat merged;
    std::mutex merge_mutex;
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&, t] {
            RunningStat local;
            const int64_t begin = t * kPerThread;
            for (int64_t i = begin; i < begin + kPerThread; ++i) {
                local.Record(samples[i]);
            }
            const std::lock_guard<std::mutex> lock(merge_mutex);
            merged.Merge(local);
        });
    }
    for (std::thread& w : workers) {
        w.join();
    }

    EXPECT_EQ(merged.Count(), serial.Count());
    EXPECT_DOUBLE_EQ(merged.Min(), serial.Min());
    EXPECT_DOUBLE_EQ(merged.Max(), serial.Max());
    EXPECT_NEAR(merged.Sum(), serial.Sum(), 1e-6 * serial.Sum());
    EXPECT_NEAR(merged.Mean(), serial.Mean(), 1e-9 * serial.Mean());
    // Chan's parallel variance update vs Welford's serial one: same
    // statistic, different floating-point path — tolerate rounding only.
    EXPECT_NEAR(merged.Variance(), serial.Variance(),
                1e-6 * serial.Variance());
}

TEST(ConcurrencyTest, MergeOrderDoesNotChangeTheStatistic)
{
    constexpr int kShards = 6;
    constexpr int64_t kPerShard = 5000;
    const std::vector<double> samples = SampleStream(23, kShards * kPerShard);

    std::vector<RunningStat> shards(kShards);
    for (int s = 0; s < kShards; ++s) {
        for (int64_t i = 0; i < kPerShard; ++i) {
            shards[s].Record(samples[s * kPerShard + i]);
        }
    }

    RunningStat forward;
    for (int s = 0; s < kShards; ++s) {
        forward.Merge(shards[s]);
    }
    RunningStat backward;
    for (int s = kShards - 1; s >= 0; --s) {
        backward.Merge(shards[s]);
    }

    EXPECT_EQ(forward.Count(), backward.Count());
    EXPECT_DOUBLE_EQ(forward.Min(), backward.Min());
    EXPECT_DOUBLE_EQ(forward.Max(), backward.Max());
    EXPECT_NEAR(forward.Mean(), backward.Mean(), 1e-9 * forward.Mean());
    EXPECT_NEAR(forward.Variance(), backward.Variance(),
                1e-6 * forward.Variance());
}

TEST(ConcurrencyTest, ShardedHistogramMergeMatchesSerial)
{
    constexpr int kThreads = 8;
    constexpr int64_t kPerThread = 20000;
    const std::vector<double> samples =
        SampleStream(31, kThreads * kPerThread);

    LatencyHistogram serial;
    for (const double v : samples) {
        serial.Record(v);
    }

    LatencyHistogram merged;
    std::mutex merge_mutex;
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&, t] {
            LatencyHistogram local;
            const int64_t begin = t * kPerThread;
            for (int64_t i = begin; i < begin + kPerThread; ++i) {
                local.Record(samples[i]);
            }
            const std::lock_guard<std::mutex> lock(merge_mutex);
            merged.Merge(local);
        });
    }
    for (std::thread& w : workers) {
        w.join();
    }

    // Bucket-wise addition is exact: every quantile must agree, not just
    // approximately.
    EXPECT_EQ(merged.Count(), serial.Count());
    EXPECT_EQ(merged.OverflowCount(), serial.OverflowCount());
    EXPECT_DOUBLE_EQ(merged.P50(), serial.P50());
    EXPECT_DOUBLE_EQ(merged.P99(), serial.P99());
    EXPECT_DOUBLE_EQ(merged.Max(), serial.Max());
}

TEST(ConcurrencyTest, ConcurrentIndependentAccumulatorsDoNotInterfere)
{
    // Fully independent accumulators on distinct threads — the baseline
    // no-sharing case TSan must also bless (no hidden globals or statics
    // inside Record).
    constexpr int kThreads = 8;
    constexpr int64_t kPerThread = 10000;
    std::vector<RunningStat> stats(kThreads);
    std::vector<LatencyHistogram> histograms(kThreads);
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&, t] {
            const std::vector<double> samples =
                SampleStream(1000 + t, kPerThread);
            for (const double v : samples) {
                stats[t].Record(v);
                histograms[t].Record(v);
            }
        });
    }
    for (std::thread& w : workers) {
        w.join();
    }
    for (int t = 0; t < kThreads; ++t) {
        EXPECT_EQ(stats[t].Count(), kPerThread);
        EXPECT_EQ(histograms[t].Count(), kPerThread);
        EXPECT_GT(stats[t].Mean(), 0.0);
    }
}

}  // namespace
}  // namespace dgnn::core
