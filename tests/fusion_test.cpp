// Kernel fusion + hybrid dispatch: the Collapse algebra over the analytic
// cost model, the registered per-model chains (identical numerics, fewer
// launches), the predict-then-place dispatcher, and its serving integration
// (placement accounting, identity with the dispatcherless path, hazard
// freedom). Labelled `fusion` in CTest.

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/hazard_checker.hpp"
#include "dispatch/dispatcher.hpp"
#include "models/fusion_catalog.hpp"
#include "models/jodie.hpp"
#include "models/tgat.hpp"
#include "models/tgn.hpp"
#include "obs/attribution.hpp"
#include "scenario/scenario.hpp"
#include "serve/batch_policy.hpp"
#include "serve/server.hpp"
#include "support/check.hpp"

namespace dgnn {
namespace {

// --------------------------------------------------------- Collapse algebra

sim::KernelDesc
Desc(const std::string& name, int64_t flops, int64_t bytes,
     int64_t parallel_items, bool irregular = false)
{
    sim::KernelDesc k;
    k.name = name;
    k.flops = flops;
    k.bytes = bytes;
    k.parallel_items = parallel_items;
    k.irregular = irregular;
    return k;
}

TEST(CollapseTest, SumsWorkAndKeepsWidestStage)
{
    sim::FusedKernelDesc fused;
    fused.name = "chain";
    fused.parts = {Desc("a", 100, 1000, 8), Desc("b", 200, 2000, 64),
                   Desc("c", 400, 500, 16)};
    fused.intermediate_bytes = {300, 100};

    const sim::KernelDesc collapsed = sim::Collapse(fused);
    EXPECT_EQ(collapsed.name, "chain");
    EXPECT_EQ(collapsed.flops, 700);
    // a pays 300 at its outgoing boundary; b pays 300 incoming + 100
    // outgoing; c pays 100 incoming:
    //   (1000-300) + (2000-400) + (500-100) = 2700
    EXPECT_EQ(collapsed.bytes, 2700);
    EXPECT_EQ(collapsed.parallel_items, 64);
    EXPECT_FALSE(collapsed.irregular);
}

TEST(CollapseTest, IntermediateLargerThanPartBytesClampsAtZero)
{
    sim::FusedKernelDesc fused;
    fused.name = "clamped";
    fused.parts = {Desc("a", 10, 100, 4), Desc("b", 10, 100, 4)};
    fused.intermediate_bytes = {1000};  // bigger than either side's traffic

    const sim::KernelDesc collapsed = sim::Collapse(fused);
    EXPECT_EQ(collapsed.bytes, 0);  // never negative
}

TEST(CollapseTest, AnyIrregularPartPoisonsTheChain)
{
    sim::FusedKernelDesc fused;
    fused.name = "mixed";
    fused.parts = {Desc("gather", 10, 4096, 16, /*irregular=*/true),
                   Desc("gemm", 100000, 4096, 256)};
    fused.intermediate_bytes = {0};

    EXPECT_TRUE(sim::Collapse(fused).irregular);
}

TEST(CollapseTest, ValidatesChainShape)
{
    sim::FusedKernelDesc empty;
    empty.name = "empty";
    EXPECT_THROW((void)sim::Collapse(empty), dgnn::Error);

    sim::FusedKernelDesc bad_boundaries;
    bad_boundaries.name = "bad";
    bad_boundaries.parts = {Desc("a", 1, 1, 1), Desc("b", 1, 1, 1)};
    bad_boundaries.intermediate_bytes = {0, 0};  // must be parts-1
    EXPECT_THROW((void)sim::Collapse(bad_boundaries), dgnn::Error);

    sim::FusedKernelDesc negative_intermediate;
    negative_intermediate.name = "neg";
    negative_intermediate.parts = {Desc("a", 1, 1, 1), Desc("b", 1, 1, 1)};
    negative_intermediate.intermediate_bytes = {-1};
    EXPECT_THROW((void)sim::Collapse(negative_intermediate), dgnn::Error);
}

TEST(CollapseTest, RejectsNonPositiveParallelismAndNegativeWork)
{
    for (const int64_t items : {int64_t{0}, int64_t{-4}}) {
        sim::FusedKernelDesc fused;
        fused.name = "width";
        fused.parts = {Desc("a", 1, 1, items)};
        EXPECT_THROW((void)sim::Collapse(fused), dgnn::Error);
    }

    sim::FusedKernelDesc negative_flops;
    negative_flops.name = "work";
    negative_flops.parts = {Desc("a", -1, 1, 1)};
    EXPECT_THROW((void)sim::Collapse(negative_flops), dgnn::Error);
}

// ------------------------------------------------- durations over the model

TEST(FusedDurationTest, MatchesCostModelOnCollapsedDescriptor)
{
    sim::FusedKernelDesc fused;
    fused.name = "chain";
    fused.parts = {Desc("a", 5000, 4096, 32), Desc("b", 9000, 8192, 64)};
    fused.intermediate_bytes = {2048};

    for (const sim::DeviceSpec& spec :
         {sim::DeviceSpec::XeonGold6226R(), sim::DeviceSpec::RtxA6000()}) {
        EXPECT_DOUBLE_EQ(sim::FusedDuration(spec, fused),
                         sim::KernelDuration(spec, sim::Collapse(fused)));
        EXPECT_DOUBLE_EQ(sim::UnfusedDuration(spec, fused),
                         sim::KernelDuration(spec, fused.parts[0]) +
                             sim::KernelDuration(spec, fused.parts[1]));
        EXPECT_DOUBLE_EQ(sim::FusedSavings(spec, fused),
                         sim::UnfusedDuration(spec, fused) -
                             sim::FusedDuration(spec, fused));
    }
}

TEST(FusedDurationTest, LaunchBoundChainSavesAtLeastTwoThirdsOfOverhead)
{
    // Four tiny launches (the JODIE t-batch shape): execution is negligible
    // next to the 6 us GPU launch overhead, so fusing 4 -> 1 must cut the
    // chain duration by >= 2x.
    sim::FusedKernelDesc fused;
    fused.name = "tbatch";
    fused.parts = {Desc("project_user", 64, 512, 1),
                   Desc("predict_item", 8192, 512, 1),
                   Desc("rnn_update", 24576, 768, 1),
                   Desc("rnn_update", 24576, 768, 1)};
    fused.intermediate_bytes = {256, 0, 0};

    const sim::DeviceSpec gpu = sim::DeviceSpec::RtxA6000();
    EXPECT_GE(sim::UnfusedDuration(gpu, fused),
              2.0 * sim::FusedDuration(gpu, fused));
}

TEST(FusedDurationTest, IrregularPoisoningCanMakeFusionLose)
{
    // A tiny gather fused in front of a byte-bound regular kernel: the whole
    // chain inherits the irregular penalty, which costs more than one saved
    // launch. FusedSavings must surface the loss (negative) — this is the
    // case that keeps placement a per-batch decision.
    sim::FusedKernelDesc fused;
    fused.name = "poisoned";
    fused.parts = {Desc("gather", 0, 4096, 200000, /*irregular=*/true),
                   Desc("stream", 0, 600000000, 200000)};
    fused.intermediate_bytes = {0};

    EXPECT_LT(sim::FusedSavings(sim::DeviceSpec::RtxA6000(), fused), 0.0);
}

TEST(CostModelEdgeTest, OccupancyClampsToFloorAndOne)
{
    const sim::DeviceSpec gpu = sim::DeviceSpec::RtxA6000();
    EXPECT_DOUBLE_EQ(sim::Occupancy(gpu, Desc("tiny", 1, 1, 1)),
                     gpu.occupancy_floor);
    EXPECT_DOUBLE_EQ(
        sim::Occupancy(gpu, Desc("huge", 1, 1, gpu.saturation_items * 100)),
        1.0);
}

TEST(CostModelEdgeTest, NonPositiveParallelismThrows)
{
    const sim::DeviceSpec gpu = sim::DeviceSpec::RtxA6000();
    EXPECT_THROW((void)sim::KernelDuration(gpu, Desc("zero", 1, 1, 0)),
                 dgnn::Error);
    EXPECT_THROW((void)sim::KernelDuration(gpu, Desc("neg", 1, 1, -1)),
                 dgnn::Error);
}

// ----------------------------------------------------------- the catalog

TEST(FusionCatalogTest, RegistersTheFiveChains)
{
    const std::vector<models::FusionPlan>& catalog = models::FusionCatalog();
    ASSERT_EQ(catalog.size(), 5u);
    EXPECT_NE(models::FindFusionPlan("tgn_memory_fused"), nullptr);
    EXPECT_NE(models::FindFusionPlan("tgn_embed_fused"), nullptr);
    EXPECT_NE(models::FindFusionPlan("tgat_encode_fused"), nullptr);
    EXPECT_NE(models::FindFusionPlan("tgat_attention_fused"), nullptr);
    EXPECT_NE(models::FindFusionPlan("jodie_tbatch_fused"), nullptr);
    EXPECT_EQ(models::FindFusionPlan("nonexistent"), nullptr);

    const models::FusionPlan* jodie =
        models::FindFusionPlan("jodie_tbatch_fused");
    ASSERT_EQ(jodie->parts.size(), 4u);  // 4 launches -> 1 per t-batch
}

TEST(FusionCatalogTest, MakeRegisteredChainValidatesPartsAgainstThePlan)
{
    const sim::FusedKernelDesc chain = models::MakeRegisteredChain(
        "tgn_memory_fused",
        {Desc("aggregate_last", 10, 100, 4), Desc("gru_memory_update", 10, 100, 4)},
        {64});
    EXPECT_EQ(chain.name, "tgn_memory_fused");
    EXPECT_EQ(chain.parts.size(), 2u);

    // Unknown chain.
    EXPECT_THROW((void)models::MakeRegisteredChain(
                     "nonexistent", {Desc("a", 1, 1, 1)}, {}),
                 dgnn::Error);
    // Wrong part count.
    EXPECT_THROW((void)models::MakeRegisteredChain(
                     "tgn_memory_fused", {Desc("aggregate_last", 1, 1, 1)}, {}),
                 dgnn::Error);
    // Wrong order.
    EXPECT_THROW(
        (void)models::MakeRegisteredChain(
            "tgn_memory_fused",
            {Desc("gru_memory_update", 1, 1, 1), Desc("aggregate_last", 1, 1, 1)},
            {64}),
        dgnn::Error);
}

// ------------------------------------------- model identity: fused vs not

data::InteractionDataset
TinyInteractions()
{
    data::InteractionSpec spec;
    spec.name = "tiny";
    spec.num_users = 20;
    spec.num_items = 12;
    spec.num_events = 120;
    spec.edge_feature_dim = 8;
    spec.seed = 5;
    return data::GenerateInteractions(spec);
}

int64_t
CountKernelLaunches(const sim::Runtime& runtime)
{
    int64_t launches = 0;
    for (const sim::TraceEvent& event : runtime.GetTrace().Events()) {
        if (event.kind == sim::EventKind::kKernel) {
            ++launches;
        }
    }
    return launches;
}

template <typename ModelFactory>
void
ExpectFusionPreservesNumerics(ModelFactory make_model)
{
    models::RunConfig run;
    run.mode = sim::ExecMode::kHybrid;
    run.batch_size = 16;
    run.num_neighbors = 4;
    run.numeric_cap = 0;  // full numerics — the checksum must not move

    auto unfused_model = make_model();
    sim::Runtime unfused_rt = models::MakeRuntime(run.mode);
    const models::RunResult unfused =
        unfused_model->RunInference(unfused_rt, run);

    run.fuse_kernels = true;
    auto fused_model = make_model();
    sim::Runtime fused_rt = models::MakeRuntime(run.mode);
    const models::RunResult fused = fused_model->RunInference(fused_rt, run);

    // Fusion is cost-shape only: identical numerics and iteration count...
    EXPECT_DOUBLE_EQ(fused.output_checksum, unfused.output_checksum);
    EXPECT_EQ(fused.iterations, unfused.iterations);
    // ...with strictly fewer launches and a cheaper (or equal) timeline.
    EXPECT_LT(CountKernelLaunches(fused_rt), CountKernelLaunches(unfused_rt));
    EXPECT_LE(fused.total_us, unfused.total_us);
}

TEST(ModelFusionTest, TgnChecksumIdenticalWithFewerLaunches)
{
    const auto ds = TinyInteractions();
    ExpectFusionPreservesNumerics(
        [&] { return std::make_unique<models::Tgn>(ds, models::TgnConfig{64, 32, 1, 11}); });
}

TEST(ModelFusionTest, TgatChecksumIdenticalWithFewerLaunches)
{
    const auto ds = TinyInteractions();
    ExpectFusionPreservesNumerics(
        [&] { return std::make_unique<models::Tgat>(ds, models::TgatConfig{16, 2, 1, 4, 7}); });
}

TEST(ModelFusionTest, JodieChecksumIdenticalWithFewerLaunches)
{
    const auto ds = TinyInteractions();
    ExpectFusionPreservesNumerics(
        [&] { return std::make_unique<models::Jodie>(ds, models::JodieConfig{}); });
}

TEST(ModelFusionTest, FusedProfileKeepsHostAndTransferVolumes)
{
    const auto ds = TinyInteractions();
    models::Tgn tgn(ds, models::TgnConfig{64, 32, 1, 11});
    serve::ModelSession session(tgn, sim::ExecMode::kHybrid,
                                /*num_neighbors=*/4);

    const serve::BatchProfile& unfused = session.Profile(16);
    const serve::BatchProfile& fused = session.FusedProfile(16);
    EXPECT_LT(fused.kernels.size(), unfused.kernels.size());
    EXPECT_DOUBLE_EQ(fused.host_us, unfused.host_us);
    EXPECT_EQ(fused.h2d_bytes, unfused.h2d_bytes);
    EXPECT_EQ(fused.d2h_bytes, unfused.d2h_bytes);

    // Both memos are stable across calls.
    EXPECT_EQ(&session.FusedProfile(16), &fused);
    EXPECT_EQ(&session.Profile(16), &unfused);
}

// ------------------------------------------------------------- dispatcher

dispatch::WorkEstimate
Estimate(const std::vector<sim::KernelDesc>& kernels,
         const std::vector<sim::KernelDesc>* fused_kernels, int64_t batch,
         double host_us, int64_t h2d, int64_t d2h)
{
    dispatch::WorkEstimate estimate;
    estimate.batch_size = batch;
    estimate.host_us = host_us;
    estimate.h2d_bytes = h2d;
    estimate.d2h_bytes = d2h;
    estimate.kernels = &kernels;
    estimate.fused_kernels = fused_kernels;
    return estimate;
}

TEST(DispatcherTest, TinyBatchStaysOnHostLargeBatchGoesToDevice)
{
    const dispatch::HybridDispatcher dispatcher;

    // Tiny launch-bound batch: two PCIe latencies dwarf the work.
    const std::vector<sim::KernelDesc> tiny = {Desc("small", 2000, 8192, 8)};
    const dispatch::PlacementDecision on_host =
        dispatcher.Decide(Estimate(tiny, nullptr, 4, 5.0, 4096, 1024));
    EXPECT_EQ(on_host.placement, dispatch::Placement::kCpu);
    EXPECT_LT(on_host.predicted_cpu_us, on_host.predicted_gpu_us);

    // Dense wide batch: device throughput wins despite the transfers.
    const std::vector<sim::KernelDesc> dense = {
        Desc("gemm", 2000000000, 64000000, 200000)};
    const dispatch::PlacementDecision on_device = dispatcher.Decide(
        Estimate(dense, nullptr, 256, 50.0, 8000000, 1000000));
    EXPECT_EQ(on_device.placement, dispatch::Placement::kGpu);
    EXPECT_LT(on_device.predicted_gpu_us, on_device.predicted_cpu_us);
}

TEST(DispatcherTest, FusedChainWinsWhenItSavesLaunches)
{
    const dispatch::HybridDispatcher dispatcher;
    const std::vector<sim::KernelDesc> unfused = {
        Desc("a", 500000000, 16000000, 200000),
        Desc("b", 500000000, 16000000, 200000),
        Desc("c", 500000000, 16000000, 200000),
        Desc("d", 500000000, 16000000, 200000)};
    sim::FusedKernelDesc chain;
    chain.name = "abcd";
    chain.parts = unfused;
    chain.intermediate_bytes = {8000000, 8000000, 8000000};
    const std::vector<sim::KernelDesc> fused = {sim::Collapse(chain)};

    const dispatch::PlacementDecision decision = dispatcher.Decide(
        Estimate(unfused, &fused, 256, 50.0, 8000000, 1000000));
    EXPECT_EQ(decision.placement, dispatch::Placement::kGpuFused);
    EXPECT_LT(decision.predicted_gpu_fused_us, decision.predicted_gpu_us);
}

TEST(DispatcherTest, DecisionsAreDeterministic)
{
    const dispatch::HybridDispatcher dispatcher;
    const std::vector<sim::KernelDesc> kernels = {
        Desc("k", 1000000, 250000, 512, /*irregular=*/true)};
    const dispatch::WorkEstimate estimate =
        Estimate(kernels, nullptr, 32, 12.0, 65536, 8192);

    const dispatch::PlacementDecision first = dispatcher.Decide(estimate);
    for (int i = 0; i < 10; ++i) {
        const dispatch::PlacementDecision again = dispatcher.Decide(estimate);
        EXPECT_EQ(again.placement, first.placement);
        EXPECT_DOUBLE_EQ(again.predicted_cpu_us, first.predicted_cpu_us);
        EXPECT_DOUBLE_EQ(again.predicted_gpu_us, first.predicted_gpu_us);
        EXPECT_DOUBLE_EQ(again.predicted_gpu_fused_us,
                         first.predicted_gpu_fused_us);
    }
}

TEST(DispatcherTest, StaticModesForceThePlacement)
{
    const std::vector<sim::KernelDesc> kernels = {Desc("k", 2000, 8192, 8)};
    const std::vector<sim::KernelDesc> fused = {Desc("k_fused", 2000, 8192, 8)};
    const dispatch::WorkEstimate estimate =
        Estimate(kernels, &fused, 4, 5.0, 4096, 1024);
    const dispatch::WorkEstimate no_fused =
        Estimate(kernels, nullptr, 4, 5.0, 4096, 1024);

    const auto decide = [](const dispatch::WorkEstimate& e,
                           dispatch::DispatchMode mode, bool allow_cpu) {
        dispatch::DispatcherConfig config;
        config.mode = mode;
        return dispatch::HybridDispatcher(config).Decide(e, allow_cpu);
    };

    EXPECT_EQ(decide(estimate, dispatch::DispatchMode::kStaticCpu, true)
                  .placement,
              dispatch::Placement::kCpu);
    EXPECT_EQ(decide(estimate, dispatch::DispatchMode::kStaticGpu, true)
                  .placement,
              dispatch::Placement::kGpu);
    EXPECT_EQ(decide(estimate, dispatch::DispatchMode::kStaticGpuFused, true)
                  .placement,
              dispatch::Placement::kGpuFused);
    // Masked CPU: the static-CPU policy falls back to the device, and the
    // hybrid never picks the host even when it predicts cheapest (the tied
    // device predictions then break toward the fused launch).
    EXPECT_EQ(decide(estimate, dispatch::DispatchMode::kStaticCpu, false)
                  .placement,
              dispatch::Placement::kGpu);
    EXPECT_EQ(decide(estimate, dispatch::DispatchMode::kHybrid, false)
                  .placement,
              dispatch::Placement::kGpuFused);
    // Without a fused chain, kGpuFused collapses into kGpu everywhere.
    EXPECT_EQ(decide(no_fused, dispatch::DispatchMode::kStaticGpuFused, true)
                  .placement,
              dispatch::Placement::kGpu);
    EXPECT_EQ(decide(no_fused, dispatch::DispatchMode::kHybrid, false)
                  .placement,
              dispatch::Placement::kGpu);
}

TEST(DispatcherTest, StatsExposeSparsityAndLaunchSignals)
{
    const std::vector<sim::KernelDesc> kernels = {
        Desc("gather", 0, 3000, 64, /*irregular=*/true),
        Desc("gemm", 1000, 1000, 512)};
    const dispatch::BatchStats stats = dispatch::HybridDispatcher::Stats(
        Estimate(kernels, nullptr, 32, 1.0, 100, 50));
    EXPECT_EQ(stats.batch_size, 32);
    EXPECT_EQ(stats.launches, 2);
    EXPECT_EQ(stats.fused_launches, 2);  // no fused chain offered
    EXPECT_EQ(stats.transfer_bytes, 150);
    EXPECT_DOUBLE_EQ(stats.irregular_byte_frac, 0.75);
    EXPECT_EQ(stats.max_parallel_items, 512);

    dispatch::WorkEstimate no_kernels;
    EXPECT_THROW((void)dispatch::HybridDispatcher::Stats(no_kernels),
                 dgnn::Error);
}

// ------------------------------------------------------ serving integration

data::InteractionDataset
ServingDataset()
{
    data::InteractionSpec spec;
    spec.name = "fusion-serve";
    spec.num_users = 128;
    spec.num_items = 32;
    spec.num_events = 1024;
    spec.edge_feature_dim = 32;
    spec.popularity_alpha = 2.5;
    spec.repeat_prob = 0.9;
    spec.seed = 31;
    return data::GenerateInteractions(spec);
}

std::vector<serve::Request>
ServingRequests(const data::InteractionDataset& dataset, int64_t n)
{
    scenario::Scenario s;
    s.name = "fusion-replay";
    s.poisson_qps = 20000.0;
    s.poisson_seed = 1009;
    return scenario::GenerateRequests(s, dataset, n);
}

serve::ServingReport
ServeWith(models::DgnnModel& model, const std::vector<serve::Request>& requests,
          serve::ExecutorKind kind, const dispatch::HybridDispatcher* dispatcher,
          serve::ServingObserver* observer = nullptr,
          sim::RuntimeObserver* runtime_observer = nullptr)
{
    serve::ModelSession session(model, sim::ExecMode::kHybrid,
                                /*num_neighbors=*/4);
    serve::TimeoutPolicy policy(/*batch_size=*/32, /*timeout_us=*/5000.0);
    serve::ServerOptions options;
    options.executor = kind;
    options.dispatcher = dispatcher;
    options.observer = observer;
    options.runtime_observer = runtime_observer;
    return serve::ServeRequests(session, policy, requests, options);
}

TEST(DispatchServingTest, HybridRoutesEveryBatchAndReportsTheMix)
{
    const auto dataset = ServingDataset();
    const auto requests = ServingRequests(dataset, 256);
    models::Tgn tgn(dataset, models::TgnConfig{64, 32, 1, 11});

    for (const serve::ExecutorKind kind :
         {serve::ExecutorKind::kSerial, serve::ExecutorKind::kPipelined}) {
        const dispatch::HybridDispatcher dispatcher;
        const serve::ServingReport report =
            ServeWith(tgn, requests, kind, &dispatcher);
        EXPECT_EQ(report.requests, 256);
        int64_t routed = 0;
        for (const int64_t n : report.placement_batches) {
            routed += n;
        }
        EXPECT_EQ(routed, report.batches);
        EXPECT_GT(report.achieved_qps, 0.0);
    }
}

TEST(DispatchServingTest, StaticGpuDispatcherIsIdenticalToDispatcherless)
{
    // kGpu placement forwards to the plain Submit with the unfused profile,
    // so a static-GPU dispatcher must reproduce the dispatcherless run
    // bit-for-bit — the identity contract of the SubmitPlaced seam.
    const auto dataset = ServingDataset();
    const auto requests = ServingRequests(dataset, 256);
    models::Tgn tgn(dataset, models::TgnConfig{64, 32, 1, 11});

    for (const serve::ExecutorKind kind :
         {serve::ExecutorKind::kSerial, serve::ExecutorKind::kPipelined}) {
        const serve::ServingReport baseline =
            ServeWith(tgn, requests, kind, nullptr);
        dispatch::DispatcherConfig config;
        config.mode = dispatch::DispatchMode::kStaticGpu;
        const dispatch::HybridDispatcher dispatcher(config);
        const serve::ServingReport routed =
            ServeWith(tgn, requests, kind, &dispatcher);

        EXPECT_DOUBLE_EQ(routed.makespan_us, baseline.makespan_us);
        EXPECT_DOUBLE_EQ(routed.achieved_qps, baseline.achieved_qps);
        EXPECT_EQ(routed.batches, baseline.batches);
        EXPECT_EQ(routed.h2d_bytes, baseline.h2d_bytes);
        EXPECT_EQ(routed.d2h_bytes, baseline.d2h_bytes);
        EXPECT_DOUBLE_EQ(routed.latency.P99(), baseline.latency.P99());
        // The only difference is the placement accounting.
        EXPECT_EQ(routed.placement_batches[static_cast<size_t>(
                      dispatch::Placement::kGpu)],
                  routed.batches);
        for (const int64_t n : baseline.placement_batches) {
            EXPECT_EQ(n, 0);
        }
    }
}

TEST(DispatchServingTest, DispatcherRequiresAHybridSession)
{
    const auto dataset = ServingDataset();
    const auto requests = ServingRequests(dataset, 32);
    models::Tgn tgn(dataset, models::TgnConfig{64, 32, 1, 11});

    serve::ModelSession session(tgn, sim::ExecMode::kCpuOnly,
                                /*num_neighbors=*/4);
    serve::TimeoutPolicy policy(32, 5000.0);
    const dispatch::HybridDispatcher dispatcher;
    serve::ServerOptions options;
    options.dispatcher = &dispatcher;
    EXPECT_THROW((void)serve::ServeRequests(session, policy, requests, options),
                 dgnn::Error);
}

TEST(DispatchServingTest, CacheEnabledSessionNeverRoutesToCpu)
{
    const auto dataset = ServingDataset();
    const auto requests = ServingRequests(dataset, 256);
    models::Tgn tgn(dataset, models::TgnConfig{64, 32, 1, 11});

    cache::DeviceCacheConfig cache_config;
    cache_config.capacity_bytes =
        dataset.NumNodes() / 4 * tgn.CacheRowBytes();
    cache_config.eviction = cache::EvictionPolicy::kLru;
    serve::ModelSession session(tgn, sim::ExecMode::kHybrid,
                                /*num_neighbors=*/4, cache_config);
    ASSERT_TRUE(session.CacheEnabled());

    serve::TimeoutPolicy policy(32, 5000.0);
    const dispatch::HybridDispatcher dispatcher;
    serve::ServerOptions options;
    options.executor = serve::ExecutorKind::kSerial;
    options.dispatcher = &dispatcher;
    const serve::ServingReport report =
        serve::ServeRequests(session, policy, requests, options);
    EXPECT_EQ(
        report.placement_batches[static_cast<size_t>(dispatch::Placement::kCpu)],
        0);
    EXPECT_GT(report.batches, 0);
}

// Forwards batch observations into a DispatchLedger.
class LedgerObserver final : public serve::ServingObserver {
  public:
    void OnBatch(const serve::BatchObservation& ob) override
    {
        ledger_.OnBatch(ob);
    }
    const obs::DispatchLedger& Ledger() const { return ledger_; }

  private:
    obs::DispatchLedger ledger_;
};

TEST(DispatchServingTest, LedgerAccountsEveryRoutedBatch)
{
    const auto dataset = ServingDataset();
    const auto requests = ServingRequests(dataset, 256);
    models::Tgn tgn(dataset, models::TgnConfig{64, 32, 1, 11});

    const dispatch::HybridDispatcher dispatcher;
    LedgerObserver observer;
    const serve::ServingReport report = ServeWith(
        tgn, requests, serve::ExecutorKind::kSerial, &dispatcher, &observer);

    const obs::DispatchLedger& ledger = observer.Ledger();
    EXPECT_EQ(ledger.RoutedBatches(), report.batches);
    for (int i = 0; i < dispatch::kNumPlacements; ++i) {
        EXPECT_EQ(ledger.Buckets()[static_cast<size_t>(i)].batches,
                  report.placement_batches[static_cast<size_t>(i)]);
    }
    // On the serial executor the cost-model predictions track the measured
    // in-executor spans closely (they differ only by per-launch submit/sync
    // overheads); a wildly wrong prediction means the seam broke.
    EXPECT_LT(ledger.MeanRelativeError(), 0.5);

    // A dispatcherless run routes nothing through the ledger.
    LedgerObserver idle;
    (void)ServeWith(tgn, requests, serve::ExecutorKind::kSerial, nullptr,
                    &idle);
    EXPECT_EQ(idle.Ledger().RoutedBatches(), 0);
}

TEST(DispatchServingTest, FusedAndRoutedServingIsHazardFree)
{
    const auto dataset = ServingDataset();
    const auto requests = ServingRequests(dataset, 256);
    models::Tgn tgn(dataset, models::TgnConfig{64, 32, 1, 11});
    models::Jodie jodie(dataset, models::JodieConfig{});

    for (models::DgnnModel* model :
         std::vector<models::DgnnModel*>{&tgn, &jodie}) {
        for (const serve::ExecutorKind kind :
             {serve::ExecutorKind::kSerial, serve::ExecutorKind::kPipelined}) {
            const dispatch::HybridDispatcher dispatcher;
            analysis::HazardChecker checker;
            (void)ServeWith(*model, requests, kind, &dispatcher, nullptr,
                            &checker);
            const analysis::HazardReport report = checker.Report();
            EXPECT_TRUE(report.Clean())
                << model->Name() << " / " << serve::ToString(kind) << "\n"
                << report.ToText();
            EXPECT_GT(report.ops, 0);
            EXPECT_GT(report.writes, 0);
        }
    }
}

}  // namespace
}  // namespace dgnn
