// Tests for src/analysis/ — the happens-before hazard checker.
//
// Three layers:
//   * unit checks of the vector-clock model against hand-built runtime
//     schedules (each Runtime sync primitive's edge, blocking-copy
//     semantics, CPU-only degeneracy, report determinism);
//   * a seeded mutation wall: a synthetic double-buffered pipeline
//     schedule with each sync edge individually removable — every dropped
//     edge must be detected with the expected hazard kind on the expected
//     resource family, and the unmutated schedule must be clean;
//   * the serving sweep: every gauntlet scenario x TGN/TGAT/JODIE x both
//     executors must be hazard-free with the checker attached, and
//     attaching the checker must not perturb the simulation.

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "analysis/hazard_checker.hpp"
#include "analysis/sync_mutations.hpp"
#include "data/temporal_interactions.hpp"
#include "models/dgnn_model.hpp"
#include "models/jodie.hpp"
#include "models/tgat.hpp"
#include "models/tgn.hpp"
#include "scenario/scenario.hpp"
#include "serve/server.hpp"

namespace dgnn::analysis {
namespace {

sim::Runtime
HybridRuntime()
{
    return models::MakeRuntime(sim::ExecMode::kHybrid);
}

sim::KernelDesc
TestKernel(const std::string& name, int64_t bytes = 1 << 20)
{
    sim::KernelDesc k;
    k.name = name;
    k.flops = bytes;
    k.bytes = bytes;
    k.parallel_items = bytes / 4;
    return k;
}

sim::AccessSet
Reads(std::vector<std::string> resources)
{
    sim::AccessSet set;
    set.reads = std::move(resources);
    return set;
}

sim::AccessSet
Writes(std::vector<std::string> resources)
{
    sim::AccessSet set;
    set.writes = std::move(resources);
    return set;
}

// ------------------------------------------------------- vector-clock model

TEST(HazardCheckerTest, AsyncCopyThenUnfencedKernelIsRaw)
{
    sim::Runtime rt = HybridRuntime();
    HazardChecker checker;
    rt.SetObserver(&checker);
    {
        sim::AccessScope scope(rt, Writes({"dev_in#0"}));
        (void)rt.CopyToDeviceAsync(1 << 20, "h2d");
    }
    {
        // No StreamWaitEvent(compute, <event on copy>): the kernel may run
        // before the DMA lands.
        sim::AccessScope scope(rt, Reads({"dev_in#0"}));
        rt.Launch(TestKernel("consumer"));
    }
    const HazardReport report = checker.Report();
    ASSERT_EQ(report.hazards.size(), 1u);
    EXPECT_EQ(report.hazards[0].kind, HazardKind::kRaw);
    EXPECT_EQ(report.hazards[0].resource, "dev_in#0");
    EXPECT_EQ(report.hazards[0].prior.timeline, "copy");
    EXPECT_EQ(report.hazards[0].current.timeline, "compute");
    EXPECT_NE(report.hazards[0].missing_edge.find("StreamWaitEvent(compute"),
              std::string::npos);
}

TEST(HazardCheckerTest, StreamWaitEventOrdersCopyBeforeKernel)
{
    sim::Runtime rt = HybridRuntime();
    HazardChecker checker;
    rt.SetObserver(&checker);
    {
        sim::AccessScope scope(rt, Writes({"dev_in#0"}));
        (void)rt.CopyToDeviceAsync(1 << 20, "h2d");
    }
    const sim::Event ready = rt.RecordEvent(sim::StreamId::kCopy);
    rt.StreamWaitEvent(sim::StreamId::kCompute, ready);
    {
        sim::AccessScope scope(rt, Reads({"dev_in#0"}));
        rt.Launch(TestKernel("consumer"));
    }
    EXPECT_TRUE(checker.Report().Clean());
}

TEST(HazardCheckerTest, KernelThenUnfencedAsyncCopyIsRaw)
{
    sim::Runtime rt = HybridRuntime();
    HazardChecker checker;
    rt.SetObserver(&checker);
    {
        sim::AccessScope scope(rt, Writes({"dev_out#0"}));
        rt.Launch(TestKernel("producer"));
    }
    {
        // No StreamWaitEvent(copy, <event on compute>).
        sim::AccessScope scope(rt, Reads({"dev_out#0"}));
        (void)rt.CopyToHostAsync(1 << 20, "d2h");
    }
    const HazardReport report = checker.Report();
    ASSERT_EQ(report.hazards.size(), 1u);
    EXPECT_EQ(report.hazards[0].kind, HazardKind::kRaw);
    EXPECT_NE(report.hazards[0].missing_edge.find("StreamWaitEvent(copy"),
              std::string::npos);
}

TEST(HazardCheckerTest, UnorderedCrossStreamWritesAreWaw)
{
    sim::Runtime rt = HybridRuntime();
    HazardChecker checker;
    rt.SetObserver(&checker);
    {
        sim::AccessScope scope(rt, Writes({"dev_in#0"}));
        (void)rt.CopyToDeviceAsync(1 << 20, "h2d");
    }
    {
        // The gather-style kernel also writes the staging buffer, with no
        // fence against the in-flight copy.
        sim::AccessScope scope(rt, Writes({"dev_in#0"}));
        rt.Launch(TestKernel("gather"));
    }
    const HazardReport report = checker.Report();
    ASSERT_EQ(report.hazards.size(), 1u);
    EXPECT_EQ(report.hazards[0].kind, HazardKind::kWaw);
}

TEST(HazardCheckerTest, HostWriteAfterUnwaitedStreamReadIsWar)
{
    sim::Runtime rt = HybridRuntime();
    HazardChecker checker;
    rt.SetObserver(&checker);
    {
        sim::AccessScope scope(rt, Reads({"host_in#0"}));
        (void)rt.CopyToDeviceAsync(1 << 20, "h2d");
    }
    {
        // Rebuilding the staging buffer without waiting for the DMA that
        // still reads it.
        sim::AccessScope scope(rt, Writes({"host_in#0"}));
        rt.RunHostFor("batch_build", 5.0);
    }
    const HazardReport report = checker.Report();
    ASSERT_EQ(report.hazards.size(), 1u);
    EXPECT_EQ(report.hazards[0].kind, HazardKind::kWar);
    EXPECT_EQ(report.hazards[0].current.timeline, "host");
}

TEST(HazardCheckerTest, HostReadOfUnsyncedKernelResultIsRaw)
{
    sim::Runtime rt = HybridRuntime();
    HazardChecker checker;
    rt.SetObserver(&checker);
    {
        sim::AccessScope scope(rt, Writes({"result"}));
        rt.Launch(TestKernel("producer"));
    }
    {
        sim::AccessScope scope(rt, Reads({"result"}));
        rt.RunHostFor("consume", 1.0);
    }
    const HazardReport report = checker.Report();
    ASSERT_EQ(report.hazards.size(), 1u);
    EXPECT_EQ(report.hazards[0].kind, HazardKind::kRaw);
    EXPECT_NE(report.hazards[0].missing_edge.find("Synchronize"),
              std::string::npos);
}

TEST(HazardCheckerTest, SynchronizeOrdersHostAfterEverything)
{
    sim::Runtime rt = HybridRuntime();
    HazardChecker checker;
    rt.SetObserver(&checker);
    {
        sim::AccessScope scope(rt, Writes({"result"}));
        rt.Launch(TestKernel("producer"));
    }
    (void)rt.Synchronize();
    {
        sim::AccessScope scope(rt, Reads({"result"}));
        rt.RunHostFor("consume", 1.0);
    }
    EXPECT_TRUE(checker.Report().Clean());
}

TEST(HazardCheckerTest, HostWaitEventOrdersHostAfterStream)
{
    sim::Runtime rt = HybridRuntime();
    HazardChecker checker;
    rt.SetObserver(&checker);
    {
        sim::AccessScope scope(rt, Writes({"result"}));
        (void)rt.CopyToHostAsync(1 << 20, "d2h");
    }
    const sim::Event done = rt.RecordEvent(sim::StreamId::kCopy);
    (void)rt.WaitEvent(done);
    {
        sim::AccessScope scope(rt, Reads({"result"}));
        rt.RunHostFor("consume", 1.0);
    }
    EXPECT_TRUE(checker.Report().Clean());
}

TEST(HazardCheckerTest, BlockingCopiesCarryTheirImplicitEdges)
{
    sim::Runtime rt = HybridRuntime();
    HazardChecker checker;
    rt.SetObserver(&checker);
    // Blocking H2D -> kernel: submission order after a host-blocking copy.
    {
        sim::AccessScope scope(rt, Writes({"dev_in#0"}));
        rt.CopyToDevice(1 << 20, "h2d");
    }
    {
        sim::AccessScope scope(rt,
                               sim::AccessSet{{"dev_in#0"}, {"dev_out#0"}});
        rt.Launch(TestKernel("k"));
    }
    // Kernel -> blocking D2H: CopyToHost drains the compute stream first.
    {
        sim::AccessScope scope(rt, Reads({"dev_out#0"}));
        rt.CopyToHost(1 << 20, "d2h");
    }
    EXPECT_TRUE(checker.Report().Clean());
}

TEST(HazardCheckerTest, CpuOnlyModeIsAlwaysOrdered)
{
    sim::Runtime rt = models::MakeRuntime(sim::ExecMode::kCpuOnly);
    HazardChecker checker;
    rt.SetObserver(&checker);
    // Everything degenerates to the host timeline; no syncs needed.
    {
        sim::AccessScope scope(rt, Writes({"buf"}));
        rt.Launch(TestKernel("producer"));
    }
    {
        sim::AccessScope scope(rt, Reads({"buf"}));
        rt.RunHostFor("consume", 1.0);
    }
    EXPECT_TRUE(checker.Report().Clean());
}

TEST(HazardCheckerTest, SameTimelineAccessesNeverConflict)
{
    sim::Runtime rt = HybridRuntime();
    HazardChecker checker;
    rt.SetObserver(&checker);
    // Two kernels on the in-order compute stream, write then read.
    {
        sim::AccessScope scope(rt, Writes({"buf"}));
        rt.Launch(TestKernel("a"));
    }
    {
        sim::AccessScope scope(rt, Reads({"buf"}));
        rt.Launch(TestKernel("b"));
    }
    EXPECT_TRUE(checker.Report().Clean());
}

TEST(HazardCheckerTest, DeduplicatesByFamilyAndCountsOccurrences)
{
    sim::Runtime rt = HybridRuntime();
    HazardChecker checker;
    rt.SetObserver(&checker);
    for (int slot = 0; slot < 3; ++slot) {
        const std::string resource = "dev_in#" + std::to_string(slot);
        {
            sim::AccessScope scope(rt, Writes({resource}));
            (void)rt.CopyToDeviceAsync(1 << 20, "h2d");
        }
        {
            sim::AccessScope scope(rt, Reads({resource}));
            rt.Launch(TestKernel("consumer"));
        }
    }
    const HazardReport report = checker.Report();
    // Same defect shape across three slot instances: one report, three
    // occurrences.
    ASSERT_EQ(report.hazards.size(), 1u);
    EXPECT_EQ(report.hazards[0].occurrences, 3);
    EXPECT_EQ(report.HazardOccurrences(), 3);
}

TEST(HazardCheckerTest, ResourceFamilyStripsInstanceSuffix)
{
    EXPECT_EQ(ResourceFamily("dev_in#0"), "dev_in");
    EXPECT_EQ(ResourceFamily("row:42#g7"), "row:42");
    EXPECT_EQ(ResourceFamily("host_store"), "host_store");
}

TEST(HazardCheckerTest, ReportCountersAndRenderingAreDeterministic)
{
    auto run = [] {
        sim::Runtime rt = HybridRuntime();
        HazardChecker checker;
        rt.SetObserver(&checker);
        {
            sim::AccessScope scope(rt, Writes({"dev_in#0"}));
            (void)rt.CopyToDeviceAsync(1 << 20, "h2d");
        }
        const sim::Event ready = rt.RecordEvent(sim::StreamId::kCopy);
        rt.StreamWaitEvent(sim::StreamId::kCompute, ready);
        {
            sim::AccessScope scope(rt, Reads({"dev_in#0"}));
            rt.Launch(TestKernel("consumer"));
        }
        (void)rt.Synchronize();
        return checker.Report();
    };
    const HazardReport a = run();
    const HazardReport b = run();
    EXPECT_EQ(a.ToText(), b.ToText());
    EXPECT_EQ(a.ops, 2);
    EXPECT_EQ(a.reads, 1);
    EXPECT_EQ(a.writes, 1);
    EXPECT_EQ(a.resources, 1);
    EXPECT_EQ(a.events_recorded, 1);
    EXPECT_EQ(a.stream_waits, 1);
    EXPECT_EQ(a.synchronizes, 1);
    EXPECT_NE(a.ToText().find("verdict ........... CLEAN"),
              std::string::npos);

    core::BenchJsonWriter json_a("hazard_test");
    core::BenchJsonWriter json_b("hazard_test");
    a.AppendJsonRecord(json_a, {{"cell", "unit"}});
    b.AppendJsonRecord(json_b, {{"cell", "unit"}});
    EXPECT_EQ(json_a.ToString(), json_b.ToString());
    EXPECT_NE(json_a.ToString().find("\"verdict\": \"CLEAN\""),
              std::string::npos);
}

TEST(HazardCheckerTest, DirtyReportListsBothSitesAndFix)
{
    sim::Runtime rt = HybridRuntime();
    HazardChecker checker;
    rt.SetObserver(&checker);
    {
        sim::AccessScope scope(rt, Writes({"dev_in#0"}));
        (void)rt.CopyToDeviceAsync(1 << 20, "h2d");
    }
    {
        sim::AccessScope scope(rt, Reads({"dev_in#0"}));
        rt.Launch(TestKernel("consumer"));
    }
    const std::string text = checker.Report().ToText();
    EXPECT_NE(text.find("verdict ........... HAZARDOUS"), std::string::npos);
    EXPECT_NE(text.find("[1] RAW on dev_in#0"), std::string::npos);
    EXPECT_NE(text.find("prior:   op#0 h2d [copy]"), std::string::npos);
    EXPECT_NE(text.find("current: op#1 consumer [compute]"),
              std::string::npos);
    EXPECT_NE(text.find("fix:"), std::string::npos);
}

// ------------------------------------------------------------ mutation wall
//
// The schedule itself lives in src/analysis/sync_mutations.cpp (the bench's
// golden mutation section drives the same fixture).

const uint64_t kMutationSeeds[] = {101, 202, 303};

TEST(MutationWallTest, IntactScheduleIsClean)
{
    for (const uint64_t seed : kMutationSeeds) {
        const HazardReport report = RunMutatedPipeline(SyncEdge::kNone, seed);
        EXPECT_TRUE(report.Clean()) << "seed " << seed << "\n"
                                    << report.ToText();
    }
}

/// Every hazard in @p report must sit on one of @p allowed families.
void
ExpectFamiliesWithin(const HazardReport& report,
                     const std::vector<std::string>& allowed)
{
    for (const Hazard& hazard : report.hazards) {
        const std::string family = ResourceFamily(hazard.resource);
        EXPECT_NE(std::find(allowed.begin(), allowed.end(), family),
                  allowed.end())
            << "unexpected hazard family " << family << "\n"
            << report.ToText();
    }
}

bool
HasHazard(const HazardReport& report, HazardKind kind,
          const std::string& family)
{
    for (const Hazard& hazard : report.hazards) {
        if (hazard.kind == kind && ResourceFamily(hazard.resource) == family) {
            return true;
        }
    }
    return false;
}

TEST(MutationWallTest, DroppedInputFenceIsRawOnDeviceInputs)
{
    for (const uint64_t seed : kMutationSeeds) {
        const HazardReport report =
            RunMutatedPipeline(SyncEdge::kInputFence, seed);
        ASSERT_FALSE(report.Clean()) << "seed " << seed;
        // The kernel consumes staging the DMA has not landed yet.
        EXPECT_TRUE(HasHazard(report, HazardKind::kRaw, "dev_in"))
            << report.ToText();
        ExpectFamiliesWithin(report, {"dev_in"});
    }
}

TEST(MutationWallTest, DroppedComputeFenceIsRawOnDeviceOutputs)
{
    for (const uint64_t seed : kMutationSeeds) {
        const HazardReport report =
            RunMutatedPipeline(SyncEdge::kComputeFence, seed);
        ASSERT_FALSE(report.Clean()) << "seed " << seed;
        // The D2H reads results the kernel has not produced yet.
        EXPECT_TRUE(HasHazard(report, HazardKind::kRaw, "dev_out"))
            << report.ToText();
        // Collateral: the throttle event no longer covers the previous
        // slot owner's kernel, so the slot-reuse H2D write may also race
        // that kernel's staging read.
        ExpectFamiliesWithin(report, {"dev_out", "dev_in"});
    }
}

TEST(MutationWallTest, DroppedThrottleWaitIsWarOnHostStaging)
{
    for (const uint64_t seed : kMutationSeeds) {
        const HazardReport report =
            RunMutatedPipeline(SyncEdge::kThrottleWait, seed);
        ASSERT_FALSE(report.Clean()) << "seed " << seed;
        // Slot reuse without the completion wait: the rebuild clobbers
        // staging the previous owner's DMA still reads.
        EXPECT_TRUE(HasHazard(report, HazardKind::kWar, "host_in"))
            << report.ToText();
    }
}

TEST(MutationWallTest, DroppedFinalDrainIsRawOnHostResults)
{
    for (const uint64_t seed : kMutationSeeds) {
        const HazardReport report =
            RunMutatedPipeline(SyncEdge::kFinalDrain, seed);
        ASSERT_FALSE(report.Clean()) << "seed " << seed;
        // The host consumes results whose D2H it never waited for.
        EXPECT_TRUE(HasHazard(report, HazardKind::kRaw, "host_out"))
            << report.ToText();
        ExpectFamiliesWithin(report, {"host_out"});
    }
}

TEST(MutationWallTest, EveryMutationIsDetected)
{
    // The 100%-detection gate: across all seeds, all four deleted edges.
    for (const SyncEdge drop :
         {SyncEdge::kInputFence, SyncEdge::kComputeFence,
          SyncEdge::kThrottleWait, SyncEdge::kFinalDrain}) {
        for (const uint64_t seed : kMutationSeeds) {
            EXPECT_FALSE(RunMutatedPipeline(drop, seed).Clean())
                << "mutation " << static_cast<int>(drop) << " seed " << seed;
        }
    }
}

TEST(MutationWallTest, IntactExchangeScheduleIsClean)
{
    for (const uint64_t seed : kMutationSeeds) {
        const HazardReport report = RunMutatedExchange(SyncEdge::kNone, seed);
        EXPECT_TRUE(report.Clean()) << "seed " << seed << "\n"
                                    << report.ToText();
        EXPECT_GT(report.ops, 0);
    }
}

TEST(MutationWallTest, DroppedExchangeFenceIsRawOnExchangeBuffer)
{
    for (const uint64_t seed : kMutationSeeds) {
        const HazardReport report =
            RunMutatedExchange(SyncEdge::kExchangeFence, seed);
        ASSERT_FALSE(report.Clean()) << "seed " << seed;
        // The unpack kernel scatters staged rows the peer pull has not
        // landed yet.
        EXPECT_TRUE(HasHazard(report, HazardKind::kRaw, "exchange_in"))
            << report.ToText();
        ExpectFamiliesWithin(report, {"exchange_in"});
    }
}

// ------------------------------------------------------------ serving sweep

data::InteractionDataset
SweepDataset()
{
    data::InteractionSpec spec;
    spec.name = "hazard-sweep";
    spec.num_users = 256;
    spec.num_items = 64;
    spec.num_events = 2048;
    spec.edge_feature_dim = 32;
    spec.popularity_alpha = 2.5;
    spec.repeat_prob = 0.9;
    spec.seed = 31;
    return data::GenerateInteractions(spec);
}

serve::ServingReport
ServeCell(models::DgnnModel& model, const scenario::Scenario& s,
          const data::InteractionDataset& dataset, serve::ExecutorKind kind,
          int64_t n, sim::RuntimeObserver* observer)
{
    cache::DeviceCacheConfig cache_config;
    cache_config.capacity_bytes = dataset.NumNodes() / 4 * model.CacheRowBytes();
    cache_config.eviction = cache::EvictionPolicy::kLru;
    serve::ModelSession session(model, sim::ExecMode::kHybrid,
                                /*num_neighbors=*/10, cache_config);
    serve::TimeoutPolicy policy(/*max_batch=*/32, /*timeout_us=*/5000.0);
    serve::ServerOptions options;
    options.executor = kind;
    options.runtime_observer = observer;
    const scenario::ScenarioSource source(s, dataset);
    return serve::Serve(session, policy, source, n, options);
}

TEST(ServingSweepTest, AllGauntletCellsAreHazardFree)
{
    const auto dataset = SweepDataset();
    const int64_t n = 512;
    const std::vector<scenario::Scenario> scenarios =
        scenario::GauntletScenarios(/*base_qps=*/20000.0, n,
                                    dataset.NumNodes(), /*seed=*/1009);
    ASSERT_EQ(scenarios.size(), 7u);

    models::Tgn tgn(dataset, models::TgnConfig{64, 32, 1, 11});
    models::Tgat tgat(dataset, models::TgatConfig{});
    models::Jodie jodie(dataset, models::JodieConfig{});
    const std::vector<std::pair<std::string, models::DgnnModel*>> model_list =
        {{"TGN", &tgn}, {"TGAT", &tgat}, {"JODIE", &jodie}};

    for (const auto& [model_name, model] : model_list) {
        for (const scenario::Scenario& s : scenarios) {
            for (const serve::ExecutorKind kind :
                 {serve::ExecutorKind::kSerial,
                  serve::ExecutorKind::kPipelined}) {
                HazardChecker checker;
                (void)ServeCell(*model, s, dataset, kind, n, &checker);
                const HazardReport report = checker.Report();
                EXPECT_TRUE(report.Clean())
                    << model_name << " / " << s.name << " / "
                    << serve::ToString(kind) << "\n"
                    << report.ToText();
                // The checker actually saw the run: ops and declared
                // accesses must be present in every hybrid cell.
                EXPECT_GT(report.ops, 0);
                EXPECT_GT(report.writes, 0);
            }
        }
    }
}

TEST(ServingSweepTest, AttachingTheCheckerDoesNotPerturbTheRun)
{
    const auto dataset = SweepDataset();
    const int64_t n = 256;
    const std::vector<scenario::Scenario> scenarios =
        scenario::GauntletScenarios(20000.0, n, dataset.NumNodes(), 1009);

    models::Tgn tgn(dataset, models::TgnConfig{64, 32, 1, 11});
    // One cache-churning cell, both executors, with vs without checker.
    for (const serve::ExecutorKind kind :
         {serve::ExecutorKind::kSerial, serve::ExecutorKind::kPipelined}) {
        const serve::ServingReport bare =
            ServeCell(tgn, scenarios[4], dataset, kind, n, nullptr);
        HazardChecker checker;
        const serve::ServingReport checked =
            ServeCell(tgn, scenarios[4], dataset, kind, n, &checker);
        EXPECT_EQ(bare.makespan_us, checked.makespan_us);
        EXPECT_EQ(bare.latency.P50(), checked.latency.P50());
        EXPECT_EQ(bare.latency.P99(), checked.latency.P99());
        EXPECT_EQ(bare.h2d_bytes, checked.h2d_bytes);
        EXPECT_EQ(bare.d2h_bytes, checked.d2h_bytes);
        EXPECT_EQ(bare.cache_stats.hits, checked.cache_stats.hits);
        EXPECT_EQ(bare.cache_stats.writeback_rows,
                  checked.cache_stats.writeback_rows);
        EXPECT_TRUE(checker.Report().Clean());
    }
}

}  // namespace
}  // namespace dgnn::analysis
