// Tests for the section-5 optimization implementations: each optimized
// schedule must (a) be at least as fast as its baseline on the simulated
// system and (b) leave the numeric outputs bit-identical.

#include <gtest/gtest.h>

#include "core/bottleneck.hpp"
#include "models/evolvegcn.hpp"
#include "models/jodie.hpp"
#include "models/tgat.hpp"

namespace dgnn::models {
namespace {

data::SnapshotDataset
Snapshots()
{
    data::SnapshotSpec spec = data::SnapshotSpec::SbmLike();
    spec.num_nodes = 300;
    spec.num_steps = 8;
    spec.edges_per_step = 2000;
    spec.overlap = 0.7;
    return data::GenerateSnapshots(spec);
}

data::InteractionDataset
Interactions()
{
    data::InteractionSpec spec;
    spec.num_users = 200;
    spec.num_items = 60;
    spec.num_events = 1500;
    spec.edge_feature_dim = 32;
    spec.seed = 21;
    return data::GenerateInteractions(spec);
}

RunConfig
GpuRun(int64_t batch, int64_t neighbors = 10)
{
    RunConfig run;
    run.mode = sim::ExecMode::kHybrid;
    run.batch_size = batch;
    run.num_neighbors = neighbors;
    run.numeric_cap = 4;
    return run;
}

RunResult
RunEvolveGcn(const data::SnapshotDataset& ds, bool pipelined, bool delta)
{
    EvolveGcnConfig config;
    config.pipelined = pipelined;
    config.delta_transfer = delta;
    EvolveGcn model(ds, config);
    sim::Runtime rt = MakeRuntime(sim::ExecMode::kHybrid);
    return model.RunInference(rt, GpuRun(1));
}

TEST(PipeliningTest, FasterWithIdenticalNumerics)
{
    const auto ds = Snapshots();
    const RunResult base = RunEvolveGcn(ds, false, false);
    const RunResult piped = RunEvolveGcn(ds, true, false);
    EXPECT_LT(piped.total_us, base.total_us);
    EXPECT_DOUBLE_EQ(piped.output_checksum, base.output_checksum);
}

TEST(DeltaTransferTest, FewerBytesIdenticalNumerics)
{
    const auto ds = Snapshots();
    const RunResult base = RunEvolveGcn(ds, false, false);
    const RunResult delta = RunEvolveGcn(ds, false, true);
    EXPECT_LT(delta.h2d_bytes, base.h2d_bytes);
    EXPECT_LE(delta.total_us, base.total_us);
    EXPECT_DOUBLE_EQ(delta.output_checksum, base.output_checksum);
}

TEST(DeltaTransferTest, SavingsTrackSnapshotOverlap)
{
    // With higher snapshot overlap the delta transfer saves more bytes.
    auto make = [](double overlap) {
        data::SnapshotSpec spec = data::SnapshotSpec::SbmLike();
        spec.num_nodes = 300;
        spec.num_steps = 8;
        spec.edges_per_step = 2000;
        spec.overlap = overlap;
        return data::GenerateSnapshots(spec);
    };
    const auto low = make(0.2);
    const auto high = make(0.9);
    const double low_saving =
        1.0 - static_cast<double>(RunEvolveGcn(low, false, true).h2d_bytes) /
                  static_cast<double>(RunEvolveGcn(low, false, false).h2d_bytes);
    const double high_saving =
        1.0 - static_cast<double>(RunEvolveGcn(high, false, true).h2d_bytes) /
                  static_cast<double>(RunEvolveGcn(high, false, false).h2d_bytes);
    EXPECT_GT(high_saving, low_saving);
}

TEST(CombinedOptimizationsTest, ComposeAndStayCorrect)
{
    const auto ds = Snapshots();
    const RunResult base = RunEvolveGcn(ds, false, false);
    const RunResult both = RunEvolveGcn(ds, true, true);
    EXPECT_LT(both.total_us, base.total_us);
    EXPECT_DOUBLE_EQ(both.output_checksum, base.output_checksum);
}

TEST(SamplingOverlapTest, TgatOverlapHidesGpuDrain)
{
    const auto ds = Interactions();
    auto run_variant = [&](bool overlap) {
        TgatConfig config;
        config.overlap_sampling = overlap;
        Tgat model(ds, config);
        sim::Runtime rt = MakeRuntime(sim::ExecMode::kHybrid);
        return model.RunInference(rt, GpuRun(100, 50));
    };
    const RunResult base = run_variant(false);
    const RunResult overlapped = run_variant(true);
    EXPECT_LE(overlapped.total_us, base.total_us);
    EXPECT_DOUBLE_EQ(overlapped.output_checksum, base.output_checksum);
}

TEST(TBatchAblationTest, TBatchingBeatsSequential)
{
    const auto ds = Interactions();
    auto run_variant = [&](bool tbatch) {
        JodieConfig config;
        config.use_tbatch = tbatch;
        Jodie model(ds, config);
        sim::Runtime rt = MakeRuntime(sim::ExecMode::kHybrid);
        RunConfig run = GpuRun(256);
        run.numeric_cap = 0;  // full numerics for checksum comparability
        return model.RunInference(rt, run);
    };
    const RunResult sequential = run_variant(false);
    const RunResult tbatched = run_variant(true);
    EXPECT_LT(tbatched.total_us, sequential.total_us);
    // Substantial, not marginal: t-batching is the JODIE paper's headline.
    EXPECT_GT(sequential.total_us / tbatched.total_us, 2.0);
    EXPECT_DOUBLE_EQ(tbatched.output_checksum, sequential.output_checksum);
}

TEST(TBatchAblationTest, TBatchingCollapsesKernelCount)
{
    // The point of t-batching is parallelism *within* a kernel: batched
    // updates run many interactions per launch, so the launch count drops
    // by roughly the mean t-batch size.
    const auto ds = Interactions();
    auto kernel_count = [&](bool tbatch) {
        JodieConfig config;
        config.use_tbatch = tbatch;
        Jodie model(ds, config);
        sim::Runtime rt = MakeRuntime(sim::ExecMode::kHybrid);
        model.RunInference(rt, GpuRun(256));
        return core::AnalyzeTemporalDependency(rt).kernel_count;
    };
    EXPECT_LT(2 * kernel_count(true), kernel_count(false));
}

}  // namespace
}  // namespace dgnn::models
