// Tests for JODIE's t-batch construction.

#include <gtest/gtest.h>

#include "data/temporal_interactions.hpp"
#include "graph/tbatch.hpp"

namespace dgnn::graph {
namespace {

TEST(TBatchTest, IndependentEventsShareOneBatch)
{
    std::vector<TemporalEvent> events = {
        {0, 1, 1.0, 0}, {2, 3, 2.0, 1}, {4, 5, 3.0, 2}};
    EventStream s(6, std::move(events));
    const auto batches = BuildTBatches(s, 0, 3);
    ASSERT_EQ(batches.size(), 1u);
    EXPECT_EQ(batches[0].event_indices.size(), 3u);
    EXPECT_TRUE(ValidateTBatches(s, batches));
}

TEST(TBatchTest, RepeatedNodeForcesNewBatch)
{
    std::vector<TemporalEvent> events = {
        {0, 1, 1.0, 0}, {0, 2, 2.0, 1}, {0, 3, 3.0, 2}};
    EventStream s(4, std::move(events));
    const auto batches = BuildTBatches(s, 0, 3);
    ASSERT_EQ(batches.size(), 3u);  // node 0 repeats every event
    EXPECT_TRUE(ValidateTBatches(s, batches));
}

TEST(TBatchTest, ChainAssignsMaxPlusOne)
{
    // (0,1) -> batch 0; (1,2) -> batch 1; (3,4) -> batch 0; (2,3) -> batch 2.
    std::vector<TemporalEvent> events = {
        {0, 1, 1.0, 0}, {1, 2, 2.0, 1}, {3, 4, 3.0, 2}, {2, 3, 4.0, 3}};
    EventStream s(5, std::move(events));
    const auto batches = BuildTBatches(s, 0, 4);
    ASSERT_EQ(batches.size(), 3u);
    EXPECT_EQ(batches[0].event_indices.size(), 2u);
    EXPECT_EQ(batches[1].event_indices.size(), 1u);
    EXPECT_EQ(batches[2].event_indices.size(), 1u);
    EXPECT_TRUE(ValidateTBatches(s, batches));
}

TEST(TBatchTest, SubrangeOnly)
{
    std::vector<TemporalEvent> events = {
        {0, 1, 1.0, 0}, {0, 1, 2.0, 1}, {2, 3, 3.0, 2}};
    EventStream s(4, std::move(events));
    const auto batches = BuildTBatches(s, 2, 3);
    ASSERT_EQ(batches.size(), 1u);
    EXPECT_EQ(batches[0].event_indices[0], 2);
    EXPECT_THROW(BuildTBatches(s, 2, 5), Error);
}

TEST(TBatchTest, EmptyRange)
{
    EventStream s(2, {});
    const auto batches = BuildTBatches(s, 0, 0);
    EXPECT_TRUE(batches.empty());
    EXPECT_TRUE(ValidateTBatches(s, batches));
}

TEST(TBatchTest, ValidatorCatchesDuplicateNode)
{
    std::vector<TemporalEvent> events = {{0, 1, 1.0, 0}, {0, 2, 2.0, 1}};
    EventStream s(3, std::move(events));
    std::vector<TBatch> bad(1);
    bad[0].event_indices = {0, 1};  // node 0 twice in one batch
    EXPECT_FALSE(ValidateTBatches(s, bad));
}

TEST(TBatchTest, ValidatorCatchesTimeInversion)
{
    std::vector<TemporalEvent> events = {{0, 1, 1.0, 0}, {0, 2, 2.0, 1}};
    EventStream s(3, std::move(events));
    std::vector<TBatch> bad(2);
    bad[0].event_indices = {1};  // later event first
    bad[1].event_indices = {0};
    EXPECT_FALSE(ValidateTBatches(s, bad));
}

/// Property sweep: generated interaction streams always produce valid
/// t-batches that cover every event exactly once.
class TBatchProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TBatchProperty, ValidAndComplete)
{
    data::InteractionSpec spec;
    spec.num_users = 40;
    spec.num_items = 25;
    spec.num_events = 600;
    spec.edge_feature_dim = 2;
    spec.seed = GetParam();
    const data::InteractionDataset ds = data::GenerateInteractions(spec);

    const auto batches = BuildTBatches(ds.stream, 0, ds.stream.NumEvents());
    EXPECT_TRUE(ValidateTBatches(ds.stream, batches));

    int64_t covered = 0;
    for (const TBatch& b : batches) {
        covered += static_cast<int64_t>(b.event_indices.size());
    }
    EXPECT_EQ(covered, ds.stream.NumEvents());

    // t-batching must produce fewer batches than events (the whole point of
    // the algorithm is parallelism), unless a node chains every event.
    EXPECT_LT(static_cast<int64_t>(batches.size()), ds.stream.NumEvents());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TBatchProperty,
                         ::testing::Values(1u, 2u, 3u, 17u, 99u));

}  // namespace
}  // namespace dgnn::graph
