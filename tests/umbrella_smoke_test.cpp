/// @file
/// Smoke test: this translation unit includes ONLY the umbrella header.
/// If `src/dgnn.hpp` drifts out of sync with the public headers (a header
/// is added but not listed, or a listed header stops compiling on its own),
/// this TU fails to build and CI catches it.

#include "dgnn.hpp"

int main() {
  // Touch one symbol from each subsystem so the linker pulls the library in.
  dgnn::Tensor t = dgnn::Tensor::Zeros(dgnn::Shape({2, 2}));
  return t.NumElements() == 4 ? 0 : 1;
}
