// Unit + property tests for tensor math kernels.

#include <cmath>

#include <gtest/gtest.h>

#include "tensor/ops.hpp"
#include "tensor/random.hpp"

namespace dgnn {
namespace {

Tensor
Mat(std::vector<float> v, int64_t rows, int64_t cols)
{
    return Tensor(Shape({rows, cols}), std::move(v));
}

TEST(MatMulTest, HandComputed2x2)
{
    const Tensor a = Mat({1, 2, 3, 4}, 2, 2);
    const Tensor b = Mat({5, 6, 7, 8}, 2, 2);
    const Tensor c = ops::MatMul(a, b);
    EXPECT_FLOAT_EQ(c.At(0, 0), 19.0f);
    EXPECT_FLOAT_EQ(c.At(0, 1), 22.0f);
    EXPECT_FLOAT_EQ(c.At(1, 0), 43.0f);
    EXPECT_FLOAT_EQ(c.At(1, 1), 50.0f);
}

TEST(MatMulTest, RectangularShapes)
{
    const Tensor a(Shape({2, 3}), 1.0f);
    const Tensor b(Shape({3, 4}), 2.0f);
    const Tensor c = ops::MatMul(a, b);
    EXPECT_EQ(c.GetShape(), Shape({2, 4}));
    EXPECT_FLOAT_EQ(c.At(0, 0), 6.0f);
}

TEST(MatMulTest, IdentityIsNeutral)
{
    Rng rng(1);
    const Tensor a = init::Normal(Shape({5, 5}), rng);
    const Tensor c = ops::MatMul(a, Tensor::Eye(5));
    for (int64_t i = 0; i < a.NumElements(); ++i) {
        EXPECT_FLOAT_EQ(c.At(i), a.At(i));
    }
}

TEST(MatMulTest, DimensionMismatchThrows)
{
    const Tensor a(Shape({2, 3}));
    const Tensor b(Shape({4, 2}));
    EXPECT_THROW(ops::MatMul(a, b), Error);
}

TEST(MatMulTest, TransposedMatchesExplicitTranspose)
{
    Rng rng(2);
    const Tensor a = init::Normal(Shape({4, 6}), rng);
    const Tensor b = init::Normal(Shape({5, 6}), rng);
    const Tensor direct = ops::MatMulTransposed(a, b);
    const Tensor via_t = ops::MatMul(a, ops::Transpose(b));
    ASSERT_EQ(direct.GetShape(), via_t.GetShape());
    for (int64_t i = 0; i < direct.NumElements(); ++i) {
        EXPECT_NEAR(direct.At(i), via_t.At(i), 1e-4f);
    }
}

TEST(LinearForwardTest, MatchesManualAffine)
{
    const Tensor x = Mat({1, 2}, 1, 2);
    const Tensor w = Mat({3, 4, 5, 6}, 2, 2);  // [out=2, in=2]
    const Tensor b = Tensor::FromVector({0.5f, -0.5f});
    const Tensor y = ops::LinearForward(x, w, b);
    EXPECT_FLOAT_EQ(y.At(0, 0), 1 * 3 + 2 * 4 + 0.5f);
    EXPECT_FLOAT_EQ(y.At(0, 1), 1 * 5 + 2 * 6 - 0.5f);
}

TEST(LinearForwardTest, EmptyBiasSkipsAdd)
{
    const Tensor x = Mat({1, 1}, 1, 2);
    const Tensor w = Mat({1, 1}, 1, 2);
    const Tensor y = ops::LinearForward(x, w, Tensor());
    EXPECT_FLOAT_EQ(y.At(0, 0), 2.0f);
}

TEST(ElementwiseTest, AddSubMul)
{
    const Tensor a = Tensor::FromVector({1, 2, 3});
    const Tensor b = Tensor::FromVector({4, 5, 6});
    EXPECT_FLOAT_EQ(ops::Add(a, b).At(1), 7.0f);
    EXPECT_FLOAT_EQ(ops::Sub(a, b).At(1), -3.0f);
    EXPECT_FLOAT_EQ(ops::Mul(a, b).At(1), 10.0f);
    EXPECT_THROW(ops::Add(a, Tensor(Shape({2}))), Error);
}

TEST(ElementwiseTest, AddRowBroadcast)
{
    const Tensor m(Shape({2, 3}), 1.0f);
    const Tensor r = Tensor::FromVector({1, 2, 3});
    const Tensor y = ops::AddRowBroadcast(m, r);
    EXPECT_FLOAT_EQ(y.At(0, 0), 2.0f);
    EXPECT_FLOAT_EQ(y.At(1, 2), 4.0f);
    EXPECT_THROW(ops::AddRowBroadcast(m, Tensor(Shape({2}))), Error);
}

TEST(ActivationTest, ReluClamps)
{
    const Tensor y = ops::Relu(Tensor::FromVector({-1.0f, 0.0f, 2.0f}));
    EXPECT_FLOAT_EQ(y.At(0), 0.0f);
    EXPECT_FLOAT_EQ(y.At(1), 0.0f);
    EXPECT_FLOAT_EQ(y.At(2), 2.0f);
}

TEST(ActivationTest, SigmoidRangeAndMidpoint)
{
    const Tensor y = ops::Sigmoid(Tensor::FromVector({0.0f, 10.0f, -10.0f}));
    EXPECT_FLOAT_EQ(y.At(0), 0.5f);
    EXPECT_GT(y.At(1), 0.99f);
    EXPECT_LT(y.At(2), 0.01f);
}

TEST(ActivationTest, TanhOddSymmetry)
{
    const Tensor y = ops::Tanh(Tensor::FromVector({1.5f, -1.5f}));
    EXPECT_NEAR(y.At(0), -y.At(1), 1e-6f);
}

TEST(ActivationTest, GeluApproximation)
{
    const Tensor y = ops::Gelu(Tensor::FromVector({0.0f, 3.0f, -3.0f}));
    EXPECT_FLOAT_EQ(y.At(0), 0.0f);
    EXPECT_NEAR(y.At(1), 3.0f, 0.02f);   // ~identity for large positive
    EXPECT_NEAR(y.At(2), 0.0f, 0.02f);   // ~zero for large negative
}

TEST(SoftmaxTest, RowsSumToOne)
{
    Rng rng(3);
    const Tensor x = init::Normal(Shape({6, 9}), rng, 3.0f);
    const Tensor y = ops::SoftmaxRows(x);
    for (int64_t i = 0; i < 6; ++i) {
        double row_sum = 0.0;
        for (int64_t j = 0; j < 9; ++j) {
            EXPECT_GE(y.At(i, j), 0.0f);
            row_sum += y.At(i, j);
        }
        EXPECT_NEAR(row_sum, 1.0, 1e-5);
    }
}

TEST(SoftmaxTest, StableForLargeInputs)
{
    const Tensor x = Mat({1000.0f, 1001.0f}, 1, 2);
    const Tensor y = ops::SoftmaxRows(x);
    EXPECT_TRUE(y.AllFinite());
    EXPECT_GT(y.At(0, 1), y.At(0, 0));
}

TEST(ConcatTest, ColsAndRows)
{
    const Tensor a(Shape({2, 2}), 1.0f);
    const Tensor b(Shape({2, 3}), 2.0f);
    const Tensor c = ops::ConcatCols(a, b);
    EXPECT_EQ(c.GetShape(), Shape({2, 5}));
    EXPECT_FLOAT_EQ(c.At(0, 1), 1.0f);
    EXPECT_FLOAT_EQ(c.At(0, 2), 2.0f);

    const Tensor d(Shape({3, 2}), 3.0f);
    const Tensor e = ops::ConcatRows(a, d);
    EXPECT_EQ(e.GetShape(), Shape({5, 2}));
    EXPECT_FLOAT_EQ(e.At(4, 0), 3.0f);

    EXPECT_THROW(ops::ConcatCols(a, d), Error);
    EXPECT_THROW(ops::ConcatRows(a, b), Error);
}

TEST(TransposeTest, DoubleTransposeIsIdentity)
{
    Rng rng(4);
    const Tensor a = init::Normal(Shape({3, 7}), rng);
    const Tensor tt = ops::Transpose(ops::Transpose(a));
    for (int64_t i = 0; i < a.NumElements(); ++i) {
        EXPECT_FLOAT_EQ(tt.At(i), a.At(i));
    }
}

TEST(ReductionTest, RowNormsAndMeans)
{
    const Tensor a = Mat({3, 4, 0, 0}, 2, 2);
    const Tensor norms = ops::RowNorms(a);
    EXPECT_FLOAT_EQ(norms.At(0), 5.0f);
    EXPECT_FLOAT_EQ(norms.At(1), 0.0f);

    const Tensor mean = ops::MeanRows(a);
    EXPECT_FLOAT_EQ(mean.At(0), 1.5f);
    EXPECT_FLOAT_EQ(mean.At(1), 2.0f);

    const Tensor sum = ops::SumRows(a);
    EXPECT_FLOAT_EQ(sum.At(0), 3.0f);
    EXPECT_FLOAT_EQ(sum.At(1), 4.0f);
}

TEST(GatherScatterTest, RoundTrip)
{
    Rng rng(5);
    Tensor table = init::Normal(Shape({10, 3}), rng);
    const std::vector<int64_t> idx = {7, 2, 2, 9};
    const Tensor rows = ops::GatherRows(table, idx);
    EXPECT_EQ(rows.GetShape(), Shape({4, 3}));
    EXPECT_FLOAT_EQ(rows.At(0, 0), table.At(7, 0));
    EXPECT_FLOAT_EQ(rows.At(2, 1), table.At(2, 1));

    Tensor modified = rows;
    modified.Fill(1.0f);
    ops::ScatterRows(table, idx, modified);
    EXPECT_FLOAT_EQ(table.At(7, 0), 1.0f);
    EXPECT_FLOAT_EQ(table.At(9, 2), 1.0f);
}

TEST(GatherScatterTest, OutOfRangeThrows)
{
    Tensor table(Shape({3, 2}));
    EXPECT_THROW(ops::GatherRows(table, {3}), Error);
    EXPECT_THROW(ops::GatherRows(table, {-1}), Error);
    Tensor rows(Shape({1, 2}));
    EXPECT_THROW(ops::ScatterRows(table, {5}, rows), Error);
    EXPECT_THROW(ops::ScatterRows(table, {0, 1}, rows), Error);
}

TEST(DotTest, Orthogonal)
{
    EXPECT_DOUBLE_EQ(
        ops::Dot(Tensor::FromVector({1, 0}), Tensor::FromVector({0, 1})), 0.0);
    EXPECT_DOUBLE_EQ(
        ops::Dot(Tensor::FromVector({1, 2}), Tensor::FromVector({3, 4})), 11.0);
    EXPECT_THROW(
        ops::Dot(Tensor::FromVector({1}), Tensor::FromVector({1, 2})), Error);
}

TEST(FlopsTest, MatMulFlopsFormula)
{
    EXPECT_EQ(ops::MatMulFlops(2, 3, 4), 2 * 2 * 3 * 4);
    EXPECT_EQ(ops::ElementwiseFlops(Tensor(Shape({5, 5}))), 25);
}

/// Property sweep: associativity-style identities over random matrices.
struct MatMulDims {
    int64_t m;
    int64_t k;
    int64_t n;
};

class MatMulProperty : public ::testing::TestWithParam<MatMulDims> {};

TEST_P(MatMulProperty, DistributesOverAddition)
{
    const auto [m, k, n] = GetParam();
    Rng rng(42);
    const Tensor a = init::Normal(Shape({m, k}), rng);
    const Tensor b = init::Normal(Shape({k, n}), rng);
    const Tensor c = init::Normal(Shape({k, n}), rng);
    const Tensor lhs = ops::MatMul(a, ops::Add(b, c));
    const Tensor rhs = ops::Add(ops::MatMul(a, b), ops::MatMul(a, c));
    for (int64_t i = 0; i < lhs.NumElements(); ++i) {
        EXPECT_NEAR(lhs.At(i), rhs.At(i), 1e-3f);
    }
}

TEST_P(MatMulProperty, TransposeReversesOrder)
{
    const auto [m, k, n] = GetParam();
    Rng rng(43);
    const Tensor a = init::Normal(Shape({m, k}), rng);
    const Tensor b = init::Normal(Shape({k, n}), rng);
    const Tensor lhs = ops::Transpose(ops::MatMul(a, b));
    const Tensor rhs = ops::MatMul(ops::Transpose(b), ops::Transpose(a));
    for (int64_t i = 0; i < lhs.NumElements(); ++i) {
        EXPECT_NEAR(lhs.At(i), rhs.At(i), 1e-3f);
    }
}

INSTANTIATE_TEST_SUITE_P(Dims, MatMulProperty,
                         ::testing::Values(MatMulDims{1, 1, 1}, MatMulDims{2, 3, 4},
                                           MatMulDims{5, 1, 5}, MatMulDims{7, 8, 3},
                                           MatMulDims{16, 16, 16}));

}  // namespace
}  // namespace dgnn
