// Tests for temporal neighborhood sampling — the invariant that sampled
// neighbors strictly precede the query time is load-bearing for every CTDG
// model.

#include <gtest/gtest.h>

#include "data/temporal_interactions.hpp"
#include "graph/temporal_sampler.hpp"

namespace dgnn::graph {
namespace {

EventStream
MakeStream()
{
    std::vector<TemporalEvent> events;
    for (int i = 0; i < 20; ++i) {
        events.push_back({0, 1 + (i % 3), static_cast<double>(i + 1), i});
    }
    return EventStream(4, std::move(events));
}

TEST(SamplerTest, NeighborsStrictlyBeforeQueryTime)
{
    const EventStream s = MakeStream();
    TemporalAdjacency adj(s);
    TemporalNeighborSampler sampler(adj, SamplingStrategy::kUniform, 1);
    const SampledNeighborhood nbh = sampler.Sample(0, 10.5, 5);
    for (size_t j = 0; j < nbh.neighbors.size(); ++j) {
        if (nbh.neighbors[j] >= 0) {
            EXPECT_LT(nbh.times[j], 10.5);
        }
    }
}

TEST(SamplerTest, NoHistoryYieldsPadding)
{
    const EventStream s = MakeStream();
    TemporalAdjacency adj(s);
    TemporalNeighborSampler sampler(adj, SamplingStrategy::kMostRecent, 1);
    const SampledNeighborhood nbh = sampler.Sample(0, 0.5, 4);
    for (int64_t nb : nbh.neighbors) {
        EXPECT_EQ(nb, -1);
    }
}

TEST(SamplerTest, MostRecentPicksLatest)
{
    const EventStream s = MakeStream();
    TemporalAdjacency adj(s);
    TemporalNeighborSampler sampler(adj, SamplingStrategy::kMostRecent, 1);
    const SampledNeighborhood nbh = sampler.Sample(0, 100.0, 3);
    // Latest three interactions of node 0 happen at t = 18, 19, 20.
    EXPECT_DOUBLE_EQ(nbh.times[0], 18.0);
    EXPECT_DOUBLE_EQ(nbh.times[1], 19.0);
    EXPECT_DOUBLE_EQ(nbh.times[2], 20.0);
}

TEST(SamplerTest, PaddingAtFrontWhenHistoryShort)
{
    const EventStream s = MakeStream();
    TemporalAdjacency adj(s);
    TemporalNeighborSampler sampler(adj, SamplingStrategy::kMostRecent, 1);
    // Only 2 interactions before t = 2.5, ask for 4.
    const SampledNeighborhood nbh = sampler.Sample(0, 2.5, 4);
    EXPECT_EQ(nbh.neighbors[0], -1);
    EXPECT_EQ(nbh.neighbors[1], -1);
    EXPECT_GE(nbh.neighbors[2], 0);
    EXPECT_GE(nbh.neighbors[3], 0);
}

TEST(SamplerTest, UniformSamplesAreTimeOrdered)
{
    const EventStream s = MakeStream();
    TemporalAdjacency adj(s);
    TemporalNeighborSampler sampler(adj, SamplingStrategy::kUniform, 7);
    const SampledNeighborhood nbh = sampler.Sample(0, 15.0, 6);
    double prev = -1.0;
    for (size_t j = 0; j < nbh.times.size(); ++j) {
        if (nbh.neighbors[j] >= 0) {
            EXPECT_GE(nbh.times[j], prev);
            prev = nbh.times[j];
        }
    }
}

TEST(SamplerTest, UniformSamplesWithoutReplacement)
{
    const EventStream s = MakeStream();
    TemporalAdjacency adj(s);
    // Node 0's history has 17 entries before t = 18.5, each at a distinct
    // time. Sampling 10 must never pick the same history entry twice (the
    // with-replacement regression showed up as repeated times). Sweep
    // seeds: a single lucky draw must not mask the bug.
    for (uint64_t seed = 0; seed < 32; ++seed) {
        TemporalNeighborSampler sampler(adj, SamplingStrategy::kUniform, seed);
        const SampledNeighborhood nbh = sampler.Sample(0, 18.5, 10);
        double prev = -1.0;
        for (size_t j = 0; j < nbh.times.size(); ++j) {
            ASSERT_GE(nbh.neighbors[j], 0);  // enough history: no padding
            EXPECT_GT(nbh.times[j], prev)
                << "duplicate history entry with seed " << seed;
            prev = nbh.times[j];
        }
    }
}

TEST(SamplerTest, UniformCoversWholeHistoryWhenKEqualsValid)
{
    const EventStream s = MakeStream();
    TemporalAdjacency adj(s);
    TemporalNeighborSampler sampler(adj, SamplingStrategy::kUniform, 3);
    // Exactly 15 valid entries before t = 15.5 and k = 15: without
    // replacement the sample must be the whole history, in time order.
    const SampledNeighborhood nbh = sampler.Sample(0, 15.5, 15);
    for (size_t j = 0; j < nbh.times.size(); ++j) {
        EXPECT_DOUBLE_EQ(nbh.times[j], static_cast<double>(j + 1));
    }
}

TEST(SamplerTest, DeterministicWithSeed)
{
    const EventStream s = MakeStream();
    TemporalAdjacency adj(s);
    TemporalNeighborSampler s1(adj, SamplingStrategy::kUniform, 99);
    TemporalNeighborSampler s2(adj, SamplingStrategy::kUniform, 99);
    const SampledNeighborhood a = s1.Sample(0, 18.0, 5);
    const SampledNeighborhood b = s2.Sample(0, 18.0, 5);
    EXPECT_EQ(a.neighbors, b.neighbors);
    EXPECT_EQ(a.times, b.times);
}

TEST(SamplerTest, CostAccumulatesAndResets)
{
    const EventStream s = MakeStream();
    TemporalAdjacency adj(s);
    TemporalNeighborSampler sampler(adj, SamplingStrategy::kUniform, 1);
    sampler.Sample(0, 15.0, 5);
    sampler.Sample(0, 15.0, 5);
    const SamplingCost c = sampler.TakeCost();
    EXPECT_GT(c.bisection_probes, 0);
    EXPECT_GT(c.gathered_bytes, 0);
    const SamplingCost after = sampler.TakeCost();
    EXPECT_EQ(after.bisection_probes, 0);
    EXPECT_EQ(after.gathered_bytes, 0);
}

TEST(SamplerTest, BatchMatchesSizes)
{
    const EventStream s = MakeStream();
    TemporalAdjacency adj(s);
    TemporalNeighborSampler sampler(adj, SamplingStrategy::kMostRecent, 1);
    const auto batch = sampler.SampleBatch({0, 1, 2}, {5.0, 5.0, 5.0}, 3);
    EXPECT_EQ(batch.size(), 3u);
    for (const auto& nbh : batch) {
        EXPECT_EQ(nbh.neighbors.size(), 3u);
    }
    EXPECT_THROW(sampler.SampleBatch({0}, {1.0, 2.0}, 3), Error);
    EXPECT_THROW(sampler.Sample(0, 1.0, 0), Error);
}

/// Property sweep over k and time: every sampled neighbor is a true
/// historical interaction partner at the recorded time.
class SamplerProperty
    : public ::testing::TestWithParam<std::tuple<int64_t, double>> {};

TEST_P(SamplerProperty, SamplesComeFromRealHistory)
{
    const auto [k, t] = GetParam();
    const data::InteractionDataset ds =
        data::GenerateInteractions(data::InteractionSpec{
            "prop", 50, 20, 500, 4, 1.1, 0.5, 1.0, 77});
    TemporalAdjacency adj(ds.stream);
    TemporalNeighborSampler sampler(adj, SamplingStrategy::kUniform, 5);

    for (int64_t node = 0; node < 10; ++node) {
        const SampledNeighborhood nbh = sampler.Sample(node, t, k);
        const auto history = adj.History(node);
        for (size_t j = 0; j < nbh.neighbors.size(); ++j) {
            if (nbh.neighbors[j] < 0) {
                continue;
            }
            bool found = false;
            for (const auto& entry : history) {
                if (entry.neighbor == nbh.neighbors[j] &&
                    entry.time == nbh.times[j]) {
                    found = true;
                    break;
                }
            }
            EXPECT_TRUE(found) << "node " << node << " neighbor "
                               << nbh.neighbors[j] << " not in history";
            EXPECT_LT(nbh.times[j], t);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SamplerProperty,
    ::testing::Combine(::testing::Values<int64_t>(1, 3, 10, 50),
                       ::testing::Values(10.0, 100.0, 400.0)));

}  // namespace
}  // namespace dgnn::graph
