// Tests for the neural-module substrate.

#include <cmath>

#include <gtest/gtest.h>

#include "nn/activations.hpp"
#include "nn/attention.hpp"
#include "nn/embedding.hpp"
#include "nn/gcn.hpp"
#include "nn/layer_norm.hpp"
#include "nn/linear.hpp"
#include "nn/mlp.hpp"
#include "nn/module.hpp"
#include "nn/rnn_cell.hpp"
#include "nn/time_encoding.hpp"
#include "tensor/ops.hpp"

namespace dgnn::nn {
namespace {

TEST(LinearTest, ShapeAndDeterminism)
{
    Rng r1(1);
    Rng r2(1);
    Linear l1(4, 3, r1);
    Linear l2(4, 3, r2);
    Rng rx(2);
    const Tensor x = init::Normal(Shape({5, 4}), rx);
    const Tensor y1 = l1.Forward(x);
    const Tensor y2 = l2.Forward(x);
    EXPECT_EQ(y1.GetShape(), Shape({5, 3}));
    for (int64_t i = 0; i < y1.NumElements(); ++i) {
        EXPECT_EQ(y1.At(i), y2.At(i));
    }
}

TEST(LinearTest, WrongInputWidthThrows)
{
    Rng rng(1);
    Linear l(4, 3, rng);
    EXPECT_THROW(l.Forward(Tensor(Shape({5, 5}))), Error);
}

TEST(LinearTest, ParameterAccounting)
{
    Rng rng(1);
    Linear with_bias(4, 3, rng, true);
    Linear no_bias(4, 3, rng, false);
    EXPECT_EQ(with_bias.ParameterCount(), 4 * 3 + 3);
    EXPECT_EQ(no_bias.ParameterCount(), 4 * 3);
    EXPECT_EQ(with_bias.ParameterBytes(), (4 * 3 + 3) * 4);
}

TEST(LinearTest, ForwardFlopsScalesWithBatch)
{
    Rng rng(1);
    Linear l(8, 8, rng);
    EXPECT_EQ(l.ForwardFlops(2), 2 * l.ForwardFlops(1));
}

TEST(ModuleTest, AllParametersIncludesChildren)
{
    Rng rng(1);
    Mlp mlp({4, 8, 2}, rng);
    // Two Linear children: (4*8+8) + (8*2+2) parameters.
    EXPECT_EQ(mlp.ParameterCount(), 4 * 8 + 8 + 8 * 2 + 2);
    const auto params = mlp.AllParameters();
    EXPECT_EQ(params.size(), 4u);  // two weights + two biases
}

TEST(ActivationsTest, ParseAndApply)
{
    EXPECT_EQ(ParseActivation("relu"), Activation::kRelu);
    EXPECT_EQ(ParseActivation("tanh"), Activation::kTanh);
    EXPECT_EQ(ParseActivation("identity"), Activation::kIdentity);
    EXPECT_THROW(ParseActivation("swish"), Error);

    const Tensor x = Tensor::FromVector({-1.0f, 1.0f});
    EXPECT_EQ(Apply(Activation::kIdentity, x).At(0), -1.0f);
    EXPECT_EQ(Apply(Activation::kRelu, x).At(0), 0.0f);
    EXPECT_STREQ(ToString(Activation::kGelu), "gelu");
}

TEST(RnnCellTest, OutputBoundedByTanh)
{
    Rng rng(3);
    RnnCell cell(6, 4, rng);
    Rng rx(4);
    const Tensor x = init::Normal(Shape({3, 6}), rx, 5.0f);
    const Tensor h = init::Normal(Shape({3, 4}), rx, 5.0f);
    const Tensor out = cell.Forward(x, h);
    EXPECT_EQ(out.GetShape(), Shape({3, 4}));
    EXPECT_LE(out.AbsMax(), 1.0f);
}

TEST(GruCellTest, InterpolatesBetweenStateAndCandidate)
{
    Rng rng(5);
    GruCell cell(4, 4, rng);
    Rng rx(6);
    const Tensor x = init::Normal(Shape({2, 4}), rx);
    const Tensor h = init::Normal(Shape({2, 4}), rx);
    const Tensor out = cell.Forward(x, h);
    EXPECT_EQ(out.GetShape(), Shape({2, 4}));
    EXPECT_TRUE(out.AllFinite());
    // GRU output is a convex combination of h and a tanh candidate, so it
    // cannot exceed max(|h|, 1).
    EXPECT_LE(out.AbsMax(), std::max(1.0f, h.AbsMax()) + 1e-5f);
}

TEST(GruCellTest, BatchMismatchThrows)
{
    Rng rng(5);
    GruCell cell(4, 4, rng);
    EXPECT_THROW(cell.Forward(Tensor(Shape({2, 4})), Tensor(Shape({3, 4}))), Error);
}

TEST(LstmCellTest, StateShapesAndBoundedHidden)
{
    Rng rng(7);
    LstmCell cell(5, 3, rng);
    LstmState s = cell.InitialState(2);
    EXPECT_EQ(s.h.GetShape(), Shape({2, 3}));
    EXPECT_EQ(s.c.GetShape(), Shape({2, 3}));
    Rng rx(8);
    for (int step = 0; step < 5; ++step) {
        const Tensor x = init::Normal(Shape({2, 5}), rx, 2.0f);
        s = cell.Forward(x, s);
    }
    EXPECT_TRUE(s.h.AllFinite());
    EXPECT_LE(s.h.AbsMax(), 1.0f);  // h = o * tanh(c)
}

TEST(LstmCellTest, CellStateAccumulates)
{
    Rng rng(9);
    LstmCell cell(2, 2, rng);
    LstmState s = cell.InitialState(1);
    Rng rx(10);
    const Tensor x = init::Normal(Shape({1, 2}), rx);
    const LstmState s1 = cell.Forward(x, s);
    const LstmState s2 = cell.Forward(x, s1);
    // The state must actually change step to step.
    EXPECT_NE(s1.c.Sum(), s2.c.Sum());
}

TEST(AttentionTest, OutputShapeAndFinite)
{
    Rng rng(11);
    MultiHeadAttention mha(8, 2, rng);
    Rng rx(12);
    const Tensor q = init::Normal(Shape({3, 8}), rx);
    const Tensor kv = init::Normal(Shape({5, 8}), rx);
    const Tensor y = mha.Forward(q, kv, kv);
    EXPECT_EQ(y.GetShape(), Shape({3, 8}));
    EXPECT_TRUE(y.AllFinite());
}

TEST(AttentionTest, SingleKeyAttendsFully)
{
    // With one key, softmax weights are exactly 1: output = Wo(Wv(k)).
    Rng rng(13);
    MultiHeadAttention mha(4, 1, rng);
    Rng rx(14);
    const Tensor q1 = init::Normal(Shape({1, 4}), rx);
    const Tensor q2 = init::Normal(Shape({1, 4}), rx);
    const Tensor kv = init::Normal(Shape({1, 4}), rx);
    const Tensor y1 = mha.Forward(q1, kv, kv);
    const Tensor y2 = mha.Forward(q2, kv, kv);
    for (int64_t i = 0; i < y1.NumElements(); ++i) {
        EXPECT_NEAR(y1.At(i), y2.At(i), 1e-5f);
    }
}

TEST(AttentionTest, InvalidHeadDivisionThrows)
{
    Rng rng(15);
    EXPECT_THROW(MultiHeadAttention(6, 4, rng), Error);
}

TEST(AttentionTest, KeyValueShapeMismatchThrows)
{
    Rng rng(16);
    MultiHeadAttention mha(4, 2, rng);
    const Tensor q(Shape({1, 4}));
    EXPECT_THROW(mha.Forward(q, Tensor(Shape({2, 4})), Tensor(Shape({3, 4}))), Error);
}

TEST(LayerNormTest, NormalizesRows)
{
    Rng rng(17);
    LayerNorm ln(16, rng);
    Rng rx(18);
    const Tensor x = init::Normal(Shape({4, 16}), rx, 10.0f);
    const Tensor y = ln.Forward(x);
    EXPECT_TRUE(y.AllFinite());
    // gamma is near 1 and beta 0, so rows should be near zero-mean.
    for (int64_t i = 0; i < 4; ++i) {
        double mean = 0.0;
        for (int64_t j = 0; j < 16; ++j) {
            mean += y.At(i, j);
        }
        EXPECT_NEAR(mean / 16.0, 0.0, 0.15);
    }
}

TEST(MlpTest, ShapesAndDepth)
{
    Rng rng(19);
    Mlp mlp({6, 12, 12, 2}, rng);
    EXPECT_EQ(mlp.InFeatures(), 6);
    EXPECT_EQ(mlp.OutFeatures(), 2);
    Rng rx(20);
    const Tensor y = mlp.Forward(init::Normal(Shape({3, 6}), rx));
    EXPECT_EQ(y.GetShape(), Shape({3, 2}));
    EXPECT_THROW(Mlp({4}, rng), Error);
}

TEST(TimeEncodingTest, BochnerBounded)
{
    Rng rng(21);
    BochnerTimeEncoder enc(16, rng);
    const Tensor deltas = Tensor::FromVector({0.0f, 1.0f, 100.0f, 1e6f});
    const Tensor y = enc.Forward(deltas);
    EXPECT_EQ(y.GetShape(), Shape({4, 16}));
    EXPECT_LE(y.AbsMax(), 1.0f);  // cos is bounded
}

TEST(TimeEncodingTest, BochnerDistinguishesTimes)
{
    Rng rng(22);
    BochnerTimeEncoder enc(16, rng);
    const Tensor y = enc.Forward(Tensor::FromVector({0.0f, 5.0f}));
    double diff = 0.0;
    for (int64_t j = 0; j < 16; ++j) {
        diff += std::fabs(y.At(0, j) - y.At(1, j));
    }
    EXPECT_GT(diff, 0.1);
}

TEST(TimeEncodingTest, Time2VecFirstComponentLinear)
{
    Rng rng(23);
    Time2Vec enc(8, rng);
    const Tensor y1 = enc.Forward(Tensor::FromVector({1.0f}));
    const Tensor y2 = enc.Forward(Tensor::FromVector({2.0f}));
    const Tensor y3 = enc.Forward(Tensor::FromVector({3.0f}));
    // Linear first component: equal spacing.
    EXPECT_NEAR(y2.At(0, 0) - y1.At(0, 0), y3.At(0, 0) - y2.At(0, 0), 1e-5f);
    // Periodic components bounded.
    for (int64_t j = 1; j < 8; ++j) {
        EXPECT_LE(std::fabs(y1.At(0, j)), 1.0f);
    }
}

TEST(EmbeddingTest, LookupUpdateRoundTrip)
{
    Rng rng(24);
    Embedding emb(10, 4, rng);
    Tensor rows(Shape({2, 4}), 3.0f);
    emb.Update({1, 7}, rows);
    const Tensor got = emb.Lookup({7, 1});
    EXPECT_FLOAT_EQ(got.At(0, 0), 3.0f);
    EXPECT_FLOAT_EQ(got.At(1, 3), 3.0f);

    emb.SetRow(2, Tensor::FromVector({1, 2, 3, 4}));
    EXPECT_FLOAT_EQ(emb.Row(2).At(3), 4.0f);
}

TEST(GcnTest, SpmmIdentityAdjacency)
{
    // A = I => Spmm(A, x) == x.
    SparseMatrix a;
    a.n = 3;
    a.row_offsets = {0, 1, 2, 3};
    a.col_indices = {0, 1, 2};
    a.values = {1.0f, 1.0f, 1.0f};
    Rng rng(25);
    const Tensor x = init::Normal(Shape({3, 5}), rng);
    const Tensor y = Spmm(a, x);
    for (int64_t i = 0; i < x.NumElements(); ++i) {
        EXPECT_FLOAT_EQ(y.At(i), x.At(i));
    }
}

TEST(GcnTest, RowNormalizeMakesRowsSumToOne)
{
    SparseMatrix a;
    a.n = 2;
    a.row_offsets = {0, 2, 3};
    a.col_indices = {0, 1, 0};
    a.values = {2.0f, 6.0f, 5.0f};
    RowNormalize(a);
    EXPECT_FLOAT_EQ(a.values[0] + a.values[1], 1.0f);
    EXPECT_FLOAT_EQ(a.values[2], 1.0f);
}

TEST(GcnTest, LayerForwardShape)
{
    SparseMatrix a;
    a.n = 4;
    a.row_offsets = {0, 1, 2, 3, 4};
    a.col_indices = {1, 2, 3, 0};
    a.values = {1.0f, 1.0f, 1.0f, 1.0f};
    Rng rng(26);
    GcnLayer layer(6, 3, rng);
    Rng rx(27);
    const Tensor h = init::Normal(Shape({4, 6}), rx);
    const Tensor y = layer.Forward(a, h);
    EXPECT_EQ(y.GetShape(), Shape({4, 3}));
    // relu output is non-negative.
    for (int64_t i = 0; i < y.NumElements(); ++i) {
        EXPECT_GE(y.At(i), 0.0f);
    }
}

TEST(GcnTest, ExternalWeightMatchesOwnWeight)
{
    SparseMatrix a;
    a.n = 2;
    a.row_offsets = {0, 1, 2};
    a.col_indices = {1, 0};
    a.values = {1.0f, 1.0f};
    Rng rng(28);
    GcnLayer layer(3, 2, rng);
    Rng rx(29);
    const Tensor h = init::Normal(Shape({2, 3}), rx);
    const Tensor y1 = layer.Forward(a, h);
    // ForwardWithWeight uses no bias, so compare with the weight-only path.
    const Tensor y2 = layer.ForwardWithWeight(a, h, layer.Weight());
    EXPECT_EQ(y1.GetShape(), y2.GetShape());
}

/// Property: GRU/LSTM parameter counts follow the gate formulas.
class RnnParamProperty : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(RnnParamProperty, GateParameterCounts)
{
    const auto [in, hidden] = GetParam();
    Rng rng(30);
    GruCell gru(in, hidden, rng);
    LstmCell lstm(in, hidden, rng);
    RnnCell rnn(in, hidden, rng);
    EXPECT_EQ(gru.ParameterCount(),
              3 * hidden * (in + hidden) + 2 * 3 * hidden);
    EXPECT_EQ(lstm.ParameterCount(),
              4 * hidden * (in + hidden) + 2 * 4 * hidden);
    EXPECT_EQ(rnn.ParameterCount(), hidden * (in + hidden) + 2 * hidden);
}

INSTANTIATE_TEST_SUITE_P(Dims, RnnParamProperty,
                         ::testing::Values(std::pair(2, 2), std::pair(4, 8),
                                           std::pair(16, 4), std::pair(32, 32)));

}  // namespace
}  // namespace dgnn::nn
